"""Tests for the majority payload protocols."""

from __future__ import annotations

import pytest

from repro.engine.population import Population
from repro.engine.simulator import Simulator
from repro.protocols.majority import ApproximateMajority, PhasedMajority, PhasedMajorityState


class TestApproximateMajority:
    def test_initial_state(self, rng):
        assert ApproximateMajority().initial_state(rng) == "U"
        assert ApproximateMajority(initial_opinion="A").initial_state(rng) == "A"

    def test_invalid_initial_opinion(self):
        with pytest.raises(ValueError):
            ApproximateMajority(initial_opinion="X")

    def test_opinion_recruits_undecided(self, make_ctx):
        protocol = ApproximateMajority()
        assert protocol.interact("A", "U", make_ctx()) == ("A", "A")
        assert protocol.interact("U", "B", make_ctx()) == ("B", "B")

    def test_conflict_makes_responder_undecided(self, make_ctx):
        protocol = ApproximateMajority()
        assert protocol.interact("A", "B", make_ctx()) == ("A", "U")
        assert protocol.interact("B", "A", make_ctx()) == ("B", "U")

    def test_same_opinion_unchanged(self, make_ctx):
        assert ApproximateMajority().interact("A", "A", make_ctx()) == ("A", "A")

    def test_memory_two_bits(self):
        assert ApproximateMajority().memory_bits("A") == 2

    def test_converges_to_initial_majority(self):
        n = 200
        states = ["A"] * 140 + ["B"] * 60
        simulator = Simulator(ApproximateMajority(), Population(states), seed=41)
        simulator.run(200)
        outputs = simulator.outputs()
        assert outputs.count("A") == n  # consensus on the majority opinion


class TestPhasedMajority:
    def test_initial_state_neutral(self, rng):
        state = PhasedMajority().initial_state(rng)
        assert state.opinion == 0 and state.exponent == 0 and state.phase == 0

    def test_invalid_max_exponent(self):
        with pytest.raises(ValueError):
            PhasedMajority(max_exponent=0)

    def test_cancellation_in_even_phase(self, make_ctx):
        protocol = PhasedMajority()
        u = PhasedMajorityState(opinion=1, exponent=0, phase=0)
        v = PhasedMajorityState(opinion=-1, exponent=0, phase=0)
        u, v = protocol.interact(u, v, make_ctx())
        assert u.opinion == 0 and v.opinion == 0

    def test_no_cancellation_with_different_exponents(self, make_ctx):
        protocol = PhasedMajority()
        u = PhasedMajorityState(opinion=1, exponent=1, phase=0)
        v = PhasedMajorityState(opinion=-1, exponent=0, phase=0)
        u, v = protocol.interact(u, v, make_ctx())
        assert u.opinion == 1 and v.opinion == -1

    def test_doubling_in_odd_phase(self, make_ctx):
        protocol = PhasedMajority()
        u = PhasedMajorityState(opinion=1, exponent=0, phase=1)
        v = PhasedMajorityState(opinion=0, exponent=0, phase=1)
        u, v = protocol.interact(u, v, make_ctx())
        assert u.opinion == 1 and v.opinion == 1
        assert u.exponent == 1 and v.exponent == 1

    def test_doubling_respects_exponent_cap(self, make_ctx):
        protocol = PhasedMajority(max_exponent=1)
        u = PhasedMajorityState(opinion=1, exponent=1, phase=1)
        v = PhasedMajorityState(opinion=0, exponent=0, phase=1)
        u, v = protocol.interact(u, v, make_ctx())
        assert v.opinion == 0  # no doubling beyond the cap

    def test_phase_propagates_to_older_agent(self, make_ctx):
        protocol = PhasedMajority()
        u = PhasedMajorityState(phase=0)
        v = PhasedMajorityState(phase=3)
        u, v = protocol.interact(u, v, make_ctx())
        assert u.phase == 3 and v.phase == 3

    def test_advance_phase(self):
        protocol = PhasedMajority()
        state = PhasedMajorityState(phase=2)
        protocol.advance_phase(state)
        assert state.phase == 3

    def test_weight_invariant_under_cancellation_and_doubling(self, make_ctx):
        """Signed weight sum(opinion * 2^-exponent) is preserved by both rules."""
        protocol = PhasedMajority()

        def weight(*states: PhasedMajorityState) -> float:
            return sum(s.opinion * 2.0 ** -s.exponent for s in states)

        cancel_u = PhasedMajorityState(opinion=1, exponent=2, phase=0)
        cancel_v = PhasedMajorityState(opinion=-1, exponent=2, phase=0)
        before = weight(cancel_u, cancel_v)
        cancel_u, cancel_v = protocol.interact(cancel_u, cancel_v, make_ctx())
        assert weight(cancel_u, cancel_v) == before == 0.0

        double_u = PhasedMajorityState(opinion=1, exponent=0, phase=1)
        double_v = PhasedMajorityState(opinion=0, exponent=0, phase=1)
        before = weight(double_u, double_v)
        double_u, double_v = protocol.interact(double_u, double_v, make_ctx())
        assert weight(double_u, double_v) == pytest.approx(before)

    def test_memory_bits_positive(self):
        protocol = PhasedMajority()
        assert protocol.memory_bits(PhasedMajorityState(opinion=1, exponent=3, phase=5)) >= 5

    def test_state_copy_independent(self):
        state = PhasedMajorityState(opinion=1, exponent=2, phase=3)
        clone = state.copy()
        clone.exponent = 9
        assert state.exponent == 2
