"""Tests for the stacked whole-ensemble engine.

Covers the acceptance surface of the ensemble work: registry round-trips,
`RunResult`-compatible per-trial series, statistical equivalence with looped
`BatchedSimulator` trials, per-trial stream independence, resize schedules
applied across all rows, the `interact_ensemble` fallback contract, the
`TrialRunner` ensemble mode, and the `--engine ensemble` experiment path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dynamic_counting import DynamicSizeCounting
from repro.core.vectorized import VectorizedDynamicCounting
from repro.engine.batch_engine import BatchedSimulator, VectorizedProtocol
from repro.engine.ensemble_engine import EnsembleRunResult, EnsembleSimulator
from repro.engine.errors import ConfigurationError
from repro.engine.registry import ENGINE_NAMES, make_engine
from repro.engine.runner import EnsembleSpec, TrialRunner
from repro.engine.rng import RandomSource, spawn_streams
from repro.experiments.base import ExperimentPreset
from repro.experiments.fig3_relative_error import run_fig3
from repro.protocols.epidemic import MaxEpidemic
from repro.protocols.majority import ApproximateMajority
from repro.protocols.vectorized import (
    VectorizedApproximateMajority,
    VectorizedMaxEpidemic,
)


class TestRegistry:
    def test_ensemble_is_registered(self):
        assert "ensemble" in ENGINE_NAMES

    def test_make_engine_round_trip(self):
        engine = make_engine("ensemble", DynamicSizeCounting(), 30, trials=4, seed=1)
        assert isinstance(engine, EnsembleSimulator)
        assert engine.trials == 4
        result = engine.run(3)
        assert isinstance(result, EnsembleRunResult)
        assert result.metadata["engine"] == "ensemble"
        assert result.metadata["trials"] == 4

    def test_trials_defaults_to_one(self):
        engine = make_engine("ensemble", DynamicSizeCounting(), 30, seed=1)
        assert engine.trials == 1

    @pytest.mark.parametrize("other", ["sequential", "array", "batched"])
    def test_trials_rejected_for_other_engines(self, other):
        with pytest.raises(ConfigurationError):
            make_engine(other, DynamicSizeCounting(), 30, seed=1, trials=4)

    def test_rejects_bad_trials_and_sub_batches(self):
        with pytest.raises(ConfigurationError):
            EnsembleSimulator(VectorizedDynamicCounting(), 10, trials=0, seed=1)
        with pytest.raises(ConfigurationError):
            EnsembleSimulator(VectorizedDynamicCounting(), 10, trials=2, seed=1, sub_batches=0)


class TestResultShape:
    def test_per_trial_results_are_run_result_compatible(self):
        engine = make_engine("ensemble", DynamicSizeCounting(), 50, trials=6, seed=2)
        result = engine.run(8)
        assert result.trials == 6
        assert len(result.trial_results) == 6
        for trial, trial_result in enumerate(result.trial_results):
            assert trial_result.parallel_time == 8
            assert trial_result.final_size == 50
            assert trial_result.interactions == 8 * 50
            assert trial_result.metadata["trial"] == trial
            series = trial_result.series()
            assert set(series) == {
                "parallel_time",
                "population_size",
                "minimum",
                "median",
                "maximum",
            }
            assert series["parallel_time"] == [float(t) for t in range(1, 9)]
        assert result.interactions == 6 * 8 * 50

    def test_pooled_snapshots_aggregate_trial_statistics(self):
        engine = make_engine("ensemble", DynamicSizeCounting(), 40, trials=5, seed=3)
        result = engine.run(5)
        for i, pooled in enumerate(result.snapshots):
            mins = [tr.snapshots[i].minimum for tr in result.trial_results]
            maxs = [tr.snapshots[i].maximum for tr in result.trial_results]
            assert pooled.minimum == pytest.approx(min(mins))
            assert pooled.maximum == pytest.approx(max(maxs))

    def test_outputs_matrix_shape(self):
        engine = EnsembleSimulator(VectorizedDynamicCounting(), 25, trials=3, seed=4)
        engine.run(2)
        assert engine.outputs().shape == (3, 25)


class TestIndependence:
    def test_trial_rows_diverge(self):
        engine = make_engine("ensemble", DynamicSizeCounting(), 60, trials=8, seed=5)
        result = engine.run(25)
        finals = [tr.snapshots[-1].median for tr in result.trial_results]
        assert len(set(finals)) > 1

    def test_reproducible_under_seed(self):
        runs = []
        for _ in range(2):
            result = make_engine(
                "ensemble", DynamicSizeCounting(), 40, trials=4, seed=11
            ).run(10)
            runs.append([s.median for tr in result.trial_results for s in tr.snapshots])
        assert runs[0] == runs[1]


class TestStatisticalEquivalence:
    def test_estimates_match_looped_batched_trials(self):
        """Ensemble trials are distributionally the same as looped batched runs."""
        n, trials, horizon = 300, 24, 60
        looped_finals = []
        looped_resets = []
        for generator in spawn_streams(77, trials):
            protocol = VectorizedDynamicCounting()
            simulator = BatchedSimulator(protocol, n, rng=RandomSource(generator))
            result = simulator.run(horizon)
            looped_finals.append(result.snapshots[-1].median)
            looped_resets.append(float(np.mean(protocol.tick_count_array(simulator.arrays))))

        engine = make_engine("ensemble", DynamicSizeCounting(), n, trials=trials, seed=78)
        result = engine.run(horizon)
        ensemble_finals = [tr.snapshots[-1].median for tr in result.trial_results]
        ensemble_resets = float(np.mean(engine.arrays["resets"]))

        assert np.mean(ensemble_finals) == pytest.approx(np.mean(looped_finals), abs=1.0)
        # Reset (tick) activity drives the protocol's round structure; the
        # per-agent averages must agree within a loose statistical band.
        assert ensemble_resets == pytest.approx(np.mean(looped_resets), rel=0.25)


class TestResizeSchedule:
    def test_shrink_applies_to_every_row(self):
        engine = make_engine(
            "ensemble", DynamicSizeCounting(), 100, trials=5, seed=6, resize_schedule=[(3, 20)]
        )
        result = engine.run(6)
        assert result.final_size == 20
        for trial_result in result.trial_results:
            assert trial_result.final_size == 20
            assert [s.population_size for s in trial_result.snapshots][-1] == 20
        for arr in engine.arrays.values():
            assert arr.shape == (5, 20)

    def test_grow_appends_fresh_rows(self):
        engine = make_engine(
            "ensemble", DynamicSizeCounting(), 20, trials=3, seed=7, resize_schedule=[(2, 50)]
        )
        result = engine.run(4)
        assert result.final_size == 50
        for arr in engine.arrays.values():
            assert arr.shape == (3, 50)

    def test_shrunk_rows_are_independent_subsets(self):
        """Decimation keeps an independently drawn subset per trial."""
        engine = EnsembleSimulator(
            VectorizedMaxEpidemic(initial_value=0), 64, trials=6, seed=8
        )
        # Give every agent a distinct value per row so kept subsets are visible.
        engine.arrays["value"] = np.tile(np.arange(64, dtype=np.float64), (6, 1))
        engine.resize_to(16)
        kept = {tuple(row) for row in engine.arrays["value"]}
        assert len(kept) > 1


class TestEnsembleFallback:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: VectorizedMaxEpidemic(initial_value=2, one_way=False),
            lambda: VectorizedApproximateMajority("A"),
        ],
    )
    def test_fast_path_matches_generic_fallback(self, factory):
        """Protocols without RNG in interact_batch agree lane-for-lane.

        The default ``interact_ensemble`` loops ``interact_batch`` per row;
        the fast paths must produce bit-identical state under the same pair
        draws.
        """
        protocol = factory()

        class Fallback(type(protocol)):
            interact_ensemble = VectorizedProtocol.interact_ensemble

        fallback = Fallback.__new__(Fallback)
        fallback.__dict__.update(protocol.__dict__)

        fast_engine = EnsembleSimulator(protocol, 40, trials=4, seed=21)
        slow_engine = EnsembleSimulator(fallback, 40, trials=4, seed=21)
        fast_engine.run(5)
        slow_engine.run(5)
        for key in fast_engine.arrays:
            assert np.array_equal(fast_engine.arrays[key], slow_engine.arrays[key])

    def test_every_registered_protocol_runs_on_ensemble(self):
        for protocol in (MaxEpidemic(initial_value=1), ApproximateMajority("A")):
            result = make_engine("ensemble", protocol, 30, trials=3, seed=9).run(4)
            assert result.parallel_time == 4
            assert len(result.trial_results) == 3


class TestInitialArrays:
    def test_one_dimensional_arrays_are_tiled(self):
        protocol = VectorizedDynamicCounting()
        initial = protocol.initial_arrays_with_estimate(20, 8.0)
        engine = EnsembleSimulator(protocol, 20, trials=4, seed=10, initial_arrays=initial)
        for key, plane in engine.arrays.items():
            assert plane.shape == (4, 20)
            expected = initial[key].astype(plane.dtype)
            for row in plane:
                assert np.array_equal(row, expected)

    def test_two_dimensional_arrays_used_per_trial(self):
        values = np.arange(12, dtype=np.float64).reshape(3, 4)
        engine = EnsembleSimulator(
            VectorizedMaxEpidemic(), 4, trials=3, seed=11, initial_arrays={"value": values}
        )
        assert np.array_equal(engine.arrays["value"], values)

    def test_wrong_leading_dimension_rejected(self):
        with pytest.raises(ConfigurationError):
            EnsembleSimulator(
                VectorizedMaxEpidemic(),
                4,
                trials=3,
                seed=12,
                initial_arrays={"value": np.zeros((2, 4))},
            )

    def test_counting_state_uses_narrow_dtypes(self):
        engine = EnsembleSimulator(VectorizedDynamicCounting(), 10, trials=2, seed=13)
        assert engine.arrays["max"].dtype == np.float32
        assert engine.arrays["interactions"].dtype == np.int32
        assert engine.arrays["resets"].dtype == np.int64

    def test_theory_parameters_keep_wide_planes(self):
        """Constants whose countdown values exceed float32's exact-integer
        range must disable the narrow planes — otherwise the -1 per
        interaction would be silently rounded away."""
        from repro.core.params import theory_parameters

        protocol = VectorizedDynamicCounting(theory_parameters(16))
        assert protocol.ensemble_state_dtypes is None
        engine = EnsembleSimulator(protocol, 30, trials=2, seed=14)
        assert engine.arrays["time"].dtype == np.float64
        before = engine.arrays["time"].copy()
        engine.run(2)
        assert not np.array_equal(engine.arrays["time"], before)

    def test_oversized_initial_values_skip_narrowing(self):
        """Initial planes too large for exact float32 keep their dtypes."""
        protocol = VectorizedDynamicCounting()
        initial = protocol.initial_arrays_with_estimate(10, 4.0)
        initial["time"] = np.full(10, 2.0**25)
        engine = EnsembleSimulator(protocol, 10, trials=2, seed=15, initial_arrays=initial)
        assert engine.arrays["time"].dtype == np.float64
        assert engine.arrays["max"].dtype == np.float64


class TestTrialRunnerEnsemble:
    def test_returns_trial_outcomes(self):
        spec = EnsembleSpec(protocol=DynamicSizeCounting(), n=50, parallel_time=10)
        runner = TrialRunner(trials=5, seed=31, ensemble=spec)
        outcomes = runner.run()
        assert [o.trial for o in outcomes] == [0, 1, 2, 3, 4]
        for outcome in outcomes:
            assert outcome.result.parallel_time == 10
            assert "median" in outcome.data
            assert len(outcome.data["median"]) == 10

    def test_run_and_aggregate(self):
        spec = EnsembleSpec(protocol=DynamicSizeCounting(), n=50, parallel_time=12)
        runner = TrialRunner(trials=4, seed=32, ensemble=spec)
        outcomes, aggregated = runner.run_and_aggregate("median")
        assert len(outcomes) == 4
        assert len(aggregated.median) == len(aggregated.index) == 12

    def test_custom_data_fn(self):
        spec = EnsembleSpec(
            protocol=DynamicSizeCounting(),
            n=40,
            parallel_time=5,
            data_fn=lambda result: {"final": result.snapshots[-1].median},
        )
        outcomes = TrialRunner(trials=3, seed=33, ensemble=spec).run()
        assert all("final" in o.data for o in outcomes)

    def test_mutual_exclusion_validation(self):
        spec = EnsembleSpec(protocol=DynamicSizeCounting(), n=10, parallel_time=1)
        with pytest.raises(ValueError):
            TrialRunner(trials=2)
        with pytest.raises(ValueError):
            TrialRunner(lambda t, rng: None, trials=2, ensemble=spec)
        with pytest.raises(ValueError):
            TrialRunner(trials=2, processes=2, ensemble=spec)


class TestExperimentPath:
    def test_fig3_ensemble_matches_looped_shape(self):
        preset = ExperimentPreset(
            name="test", population_sizes=(40, 80), parallel_time=30, trials=4
        )
        looped = run_fig3(preset, engine="batched")
        stacked = run_fig3(preset, engine="ensemble")
        assert len(stacked.rows) == len(looped.rows)
        assert [row["n"] for row in stacked.rows] == [row["n"] for row in looped.rows]
        assert all(row["trials"] == 4 for row in stacked.rows)
        assert set(stacked.rows[0]) == set(looped.rows[0])
        assert stacked.metadata["engine"] == "ensemble"

    def test_cli_accepts_ensemble(self, capsys):
        from repro.experiments.cli import main

        preset_patch = pytest.MonkeyPatch()
        try:
            from repro.experiments import config

            tiny = ExperimentPreset(
                name="quick", population_sizes=(30,), parallel_time=10, trials=3
            )
            preset_patch.setitem(config.PRESETS["fig3"], "quick", tiny)
            assert main(["fig3", "--effort", "quick", "--engine", "ensemble"]) == 0
        finally:
            preset_patch.undo()
        out = capsys.readouterr().out
        assert "fig3" in out
