"""Timing primitives: measure(), Timing statistics, calibration."""

from __future__ import annotations

import pytest

from repro.bench.timing import Timing, calibration_seconds, measure
from repro.engine.errors import ConfigurationError


class TestTiming:
    def test_median_and_minimum(self):
        timing = Timing(seconds=(0.3, 0.1, 0.2))
        assert timing.median == 0.2
        assert timing.minimum == 0.1

    def test_single_sample(self):
        timing = Timing(seconds=(0.5,))
        assert timing.median == 0.5
        assert timing.minimum == 0.5

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            Timing(seconds=())

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            Timing(seconds=(0.1, -0.1))

    def test_negative_compile_seconds_rejected(self):
        with pytest.raises(ConfigurationError):
            Timing(seconds=(0.1,), compile_seconds=-0.5)

    def test_compile_seconds_defaults_to_none(self):
        assert Timing(seconds=(0.1,)).compile_seconds is None


class TestMeasure:
    def test_warmup_runs_are_not_measured(self):
        calls = []
        timing = measure(lambda: calls.append(1), warmup=2, repeats=3)
        assert len(calls) == 5
        assert len(timing.seconds) == 3

    def test_zero_warmup(self):
        calls = []
        timing = measure(lambda: calls.append(1), warmup=0, repeats=1)
        assert len(calls) == 1
        assert len(timing.seconds) == 1

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ConfigurationError):
            measure(lambda: None, warmup=-1)
        with pytest.raises(ConfigurationError):
            measure(lambda: None, repeats=0)

    def test_samples_are_positive(self):
        timing = measure(lambda: sum(range(1000)), warmup=0, repeats=2)
        assert all(s >= 0 for s in timing.seconds)

    def test_warmup_fn_runs_once_before_everything(self):
        # The one-shot warmup (JIT compilation) runs before warmup runs and
        # samples; its wall time is reported separately, never as a sample.
        events = []
        timing = measure(
            lambda: events.append("run"),
            warmup=2,
            repeats=3,
            warmup_fn=lambda: events.append("compile"),
        )
        assert events == ["compile", "run", "run", "run", "run", "run"]
        assert len(timing.seconds) == 3
        assert timing.compile_seconds is not None and timing.compile_seconds >= 0

    def test_without_warmup_fn_compile_seconds_is_none(self):
        assert measure(lambda: None, warmup=0, repeats=1).compile_seconds is None


def test_calibration_is_positive_and_repeatable():
    first = calibration_seconds(warmup=0, repeats=1)
    second = calibration_seconds(warmup=0, repeats=1)
    assert first > 0 and second > 0
    # Same fixed workload on the same machine: same order of magnitude.
    assert 0.2 < first / second < 5.0
