"""Tests for composing the size estimate with payload protocols."""

from __future__ import annotations

import pytest

from repro.core.composition import ComposedProtocol, ComposedState
from repro.core.dynamic_counting import DynamicSizeCounting
from repro.core.state import CountingState
from repro.engine.recorder import EventRecorder
from repro.engine.simulator import Simulator
from repro.protocols.majority import ApproximateMajority, PhasedMajority, PhasedMajorityState


class TestComposedState:
    def test_copy_is_deep_for_clock(self):
        state = ComposedState(clock=CountingState(max_value=5), payload="A")
        clone = state.copy()
        clone.clock.max_value = 9
        assert state.clock.max_value == 5

    def test_copy_uses_payload_copy_when_available(self):
        payload = PhasedMajorityState(opinion=1)
        state = ComposedState(clock=CountingState(), payload=payload)
        clone = state.copy()
        clone.payload.opinion = -1
        assert state.payload.opinion == 1


class TestComposedProtocol:
    def test_initial_state_combines_both(self, rng):
        composed = ComposedProtocol(ApproximateMajority())
        state = composed.initial_state(rng)
        assert state.clock.max_value == 1
        assert state.payload == "U"

    def test_invalid_restart_threshold(self):
        with pytest.raises(ValueError):
            ComposedProtocol(ApproximateMajority(), restart_threshold=0)

    def test_make_initial_population_with_payload_states(self, rng):
        composed = ComposedProtocol(ApproximateMajority())
        population = composed.make_initial_population(4, rng, payload_states=["A", "A", "B", "U"])
        opinions = [composed.output(state) for state in population.states()]
        assert opinions == ["A", "A", "B", "U"]

    def test_make_initial_population_length_mismatch(self, rng):
        composed = ComposedProtocol(ApproximateMajority())
        with pytest.raises(ValueError):
            composed.make_initial_population(3, rng, payload_states=["A"])

    def test_interaction_advances_both_layers(self, make_ctx):
        composed = ComposedProtocol(ApproximateMajority())
        u = ComposedState(clock=CountingState(max_value=5, last_max=5, time=25), payload="A")
        v = ComposedState(clock=CountingState(max_value=5, last_max=5, time=28), payload="U")
        u, v = composed.interact(u, v, make_ctx())
        assert u.payload == "A" and v.payload == "A"  # majority recruited
        assert u.clock.time == 27  # CHVP applied to the clock layer

    def test_tick_advances_payload_phase(self, make_ctx):
        composed = ComposedProtocol(PhasedMajority())
        # The initiator's clock is about to wrap -> reset -> tick -> phase bump.
        u = ComposedState(
            clock=CountingState(max_value=5, last_max=5, time=0),
            payload=PhasedMajorityState(opinion=1, phase=0),
        )
        v = ComposedState(
            clock=CountingState(max_value=5, last_max=5, time=10),
            payload=PhasedMajorityState(opinion=0, phase=0),
        )
        u, v = composed.interact(u, v, make_ctx())
        assert u.payload.phase == 1

    def test_custom_on_tick_callback(self, make_ctx):
        calls = []

        def on_tick(payload_protocol, payload_state):
            calls.append(payload_state)
            return payload_state

        composed = ComposedProtocol(ApproximateMajority(), on_tick=on_tick)
        u = ComposedState(clock=CountingState(max_value=5, last_max=5, time=0), payload="A")
        v = ComposedState(clock=CountingState(max_value=5, last_max=5, time=10), payload="U")
        composed.interact(u, v, make_ctx())
        assert calls == ["A"]

    def test_tick_events_visible_to_recorders(self):
        composed = ComposedProtocol(ApproximateMajority())
        recorder = EventRecorder(kinds={"tick"})
        simulator = Simulator(composed, 60, seed=81, recorders=[recorder])
        simulator.run(200)
        assert len(recorder.events) > 0

    def test_estimate_accessor(self):
        composed = ComposedProtocol(ApproximateMajority())
        state = ComposedState(clock=CountingState(max_value=9, last_max=3), payload="A")
        assert composed.estimate(state) == 9.0

    def test_memory_is_sum_of_layers(self):
        composed = ComposedProtocol(ApproximateMajority())
        state = ComposedState(clock=CountingState(max_value=9, last_max=3, time=50), payload="A")
        assert composed.memory_bits(state) == composed.counting.memory_bits(
            state.clock
        ) + composed.payload.memory_bits(state.payload)

    def test_describe_mentions_payload(self):
        description = ComposedProtocol(ApproximateMajority()).describe()
        assert description["payload"]["name"] == "approximate-majority"


class TestEndToEndComposition:
    def test_majority_decided_while_size_tracked(self):
        n = 120
        composed = ComposedProtocol(ApproximateMajority(), counting=DynamicSizeCounting())
        import numpy as np

        from repro.engine.rng import RandomSource

        rng = RandomSource.from_seed(82)
        payloads = ["A"] * 84 + ["B"] * 36
        population = composed.make_initial_population(n, rng, payload_states=payloads)
        simulator = Simulator(composed, population, rng=rng)
        simulator.run(300)
        opinions = [composed.output(state) for state in simulator.states()]
        estimates = [composed.estimate(state) for state in simulator.states()]
        assert opinions.count("A") == n  # initial majority wins
        assert min(estimates) >= 0.5 * np.log2(n)  # size estimate stays sane
