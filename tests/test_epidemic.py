"""Tests for epidemic protocols and the Lemma 4.2 time bound."""

from __future__ import annotations

import math

from repro.analysis.theory import epidemic_interaction_bound
from repro.engine.population import Population
from repro.engine.recorder import EventRecorder
from repro.engine.simulator import Simulator
from repro.protocols.epidemic import InfectionEpidemic, MaxEpidemic


class TestMaxEpidemic:
    def test_initial_state(self, rng):
        assert MaxEpidemic().initial_state(rng) == 0
        assert MaxEpidemic(initial_value=5).initial_state(rng) == 5

    def test_one_way_only_updates_initiator(self, make_ctx):
        protocol = MaxEpidemic(one_way=True)
        # Initiator adopts the larger responder value; responder is untouched.
        assert protocol.interact(1, 9, make_ctx()) == (9, 9)
        # Responder with the smaller value keeps it in the one-way variant.
        assert protocol.interact(9, 1, make_ctx()) == (9, 1)

    def test_two_way_updates_both(self, make_ctx):
        protocol = MaxEpidemic(one_way=False)
        u, v = protocol.interact(3, 8, make_ctx())
        assert u == 8 and v == 8

    def test_memory_bits(self):
        protocol = MaxEpidemic()
        assert protocol.memory_bits(0) == 1
        assert protocol.memory_bits(255) == 8

    def test_describe(self):
        description = MaxEpidemic(initial_value=2, one_way=False).describe()
        assert description["initial_value"] == 2
        assert description["one_way"] is False

    def test_spreads_within_lemma_4_2_bound(self):
        n = 100
        population = Population([1] + [0] * (n - 1))
        simulator = Simulator(MaxEpidemic(one_way=True), population, seed=5)
        bound_interactions = epidemic_interaction_bound(n, k=1.0)
        simulator.run(math.ceil(bound_interactions / n))
        assert all(value == 1 for value in simulator.outputs())


class TestInfectionEpidemic:
    def test_initially_susceptible(self, rng):
        assert InfectionEpidemic().initial_state(rng) == InfectionEpidemic.SUSCEPTIBLE

    def test_two_way_infection(self, make_ctx):
        protocol = InfectionEpidemic()
        assert protocol.interact(0, 1, make_ctx()) == (1, 1)
        assert protocol.interact(1, 0, make_ctx()) == (1, 1)
        assert protocol.interact(0, 0, make_ctx()) == (0, 0)

    def test_one_way_infection(self, make_ctx):
        protocol = InfectionEpidemic(one_way=True)
        assert protocol.interact(0, 1, make_ctx()) == (1, 1)
        # One-way: an infected initiator does not infect the responder.
        assert protocol.interact(1, 0, make_ctx()) == (1, 0)

    def test_infection_events_emitted(self, make_ctx, event_collector):
        protocol = InfectionEpidemic()
        protocol.interact(0, 1, make_ctx(sink=event_collector))
        assert event_collector.kinds() == ["infected"]

    def test_memory_is_one_bit(self):
        assert InfectionEpidemic().memory_bits(0) == 1
        assert InfectionEpidemic().memory_bits(1) == 1

    def test_full_infection_in_simulation(self):
        population = Population([1] + [0] * 63)
        recorder = EventRecorder(kinds={"infected"})
        simulator = Simulator(InfectionEpidemic(), population, seed=9, recorders=[recorder])
        simulator.run(40)
        assert all(state == 1 for state in simulator.outputs())
        # Every agent except the source was infected exactly once.
        assert len(recorder.events) == 63
