"""Checkpoint/resume: container integrity, engine round-trips, determinism.

The determinism matrix is the heart of the long-horizon contract: for every
checkpoint-capable engine, at workers 1 and 4, a run interrupted by the
deterministic fault-injection knob (``interrupt_after``) and resumed from
its on-disk checkpoints must reproduce the uninterrupted run's per-trial
snapshot series **bit-identically** — not approximately.  Corruption is the
other half: a truncated or tampered checkpoint must fail loudly with
``CheckpointError``, never resume silently wrong.
"""

from __future__ import annotations

import json

import pytest

from repro.core.dynamic_counting import DynamicSizeCounting
from repro.engine.checkpoint import (
    CheckpointInterrupted,
    read_checkpoint,
    write_checkpoint,
)
from repro.engine.errors import CheckpointError, ConfigurationError
from repro.engine.registry import engine_info, make_engine
from repro.engine.rng import RandomSource
from repro.engine.runner import run_engine_trials

N = 32
TRIALS = 10
PARALLEL_TIME = 12
SNAPSHOT_EVERY = 2
CHECKPOINT_EVERY = 4
SEED = 20240726

ENGINES = ("sequential", "array", "batched", "ensemble", "counts")


def _factory(engine_name, rng, ensemble_trials):
    """Module-level engine factory so worker processes can unpickle it."""
    return make_engine(
        engine_name,
        DynamicSizeCounting(),
        N,
        rng=rng,
        trials=ensemble_trials if engine_name == "ensemble" else None,
    )


def _run(engine, workers, **knobs):
    return run_engine_trials(
        _factory,
        engine=engine,
        trials=TRIALS,
        seed=SEED,
        parallel_time=PARALLEL_TIME,
        snapshot_every=SNAPSHOT_EVERY,
        workers=workers,
        **knobs,
    )


# ------------------------------------------------------------- container


class TestCheckpointContainer:
    def test_round_trip(self, tmp_path):
        payload = {"answer": 42, "series": [1.0, float("nan"), 3.0]}
        path = write_checkpoint(tmp_path / "x.ckpt", payload, kind="engine")
        loaded = read_checkpoint(path, kind="engine")
        assert loaded["answer"] == 42
        assert loaded["series"][0] == 1.0 and loaded["series"][1] != loaded["series"][1]

    def test_kind_mismatch_rejected(self, tmp_path):
        path = write_checkpoint(tmp_path / "x.ckpt", {"a": 1}, kind="engine")
        with pytest.raises(CheckpointError, match="kind"):
            read_checkpoint(path, kind="shard")

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(CheckpointError):
            read_checkpoint(tmp_path / "absent.ckpt")

    def test_truncated_file_rejected(self, tmp_path):
        path = write_checkpoint(tmp_path / "x.ckpt", {"a": list(range(1000))}, kind="engine")
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) - 7])
        with pytest.raises(CheckpointError):
            read_checkpoint(path)

    def test_corrupted_payload_rejected(self, tmp_path):
        path = write_checkpoint(tmp_path / "x.ckpt", {"a": list(range(1000))}, kind="engine")
        blob = bytearray(path.read_bytes())
        blob[-10] ^= 0xFF  # flip one payload byte; the sha256 must catch it
        path.write_bytes(bytes(blob))
        with pytest.raises(CheckpointError, match="checksum"):
            read_checkpoint(path)

    def test_wrong_magic_rejected(self, tmp_path):
        path = tmp_path / "x.ckpt"
        path.write_bytes(b"not-a-checkpoint\n{}\n")
        with pytest.raises(CheckpointError):
            read_checkpoint(path)

    def test_unpicklable_payload_rejected(self, tmp_path):
        with pytest.raises(CheckpointError):
            write_checkpoint(tmp_path / "x.ckpt", {"fn": lambda: None}, kind="engine")
        assert list(tmp_path.iterdir()) == []  # no partial file left behind


# -------------------------------------------------------- engine round-trip


class TestEngineCheckpoint:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_registry_advertises_support(self, engine):
        assert engine_info(engine).supports_checkpoint

    @pytest.mark.parametrize("engine", ENGINES)
    def test_save_restore_continues_bit_identically(self, engine, tmp_path):
        trials = 3 if engine == "ensemble" else None

        def build():
            return make_engine(
                engine,
                DynamicSizeCounting(),
                N,
                rng=RandomSource.from_seed(7),
                trials=trials,
            )

        continuous = build()
        baseline = continuous.run(10, snapshot_every=SNAPSHOT_EVERY).series()

        first = build()
        first.run(4, snapshot_every=SNAPSHOT_EVERY)
        path = first.save_checkpoint(tmp_path / "engine.ckpt")

        second = build()
        second.restore_checkpoint(path)
        tail = second.run(6, snapshot_every=SNAPSHOT_EVERY).series()
        head_len = {key: len(baseline[key]) - len(tail[key]) for key in baseline}
        stitched = {
            key: baseline[key][: head_len[key]] + tail[key] for key in baseline
        }
        assert stitched == baseline

    def test_restore_into_wrong_engine_rejected(self, tmp_path):
        sequential = make_engine(
            "sequential", DynamicSizeCounting(), N, rng=RandomSource.from_seed(7)
        )
        sequential.run(2)
        path = sequential.save_checkpoint(tmp_path / "seq.ckpt")
        array = make_engine(
            "array", DynamicSizeCounting(), N, rng=RandomSource.from_seed(7)
        )
        with pytest.raises(CheckpointError, match="sequential"):
            array.restore_checkpoint(path)


# ----------------------------------------------------- determinism matrix


class TestKillAndResume:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("workers", (1, 4))
    def test_interrupted_resume_is_bit_identical(self, engine, workers, tmp_path):
        baseline = _run(engine, workers)
        with pytest.raises(CheckpointInterrupted):
            _run(
                engine,
                workers,
                checkpoint_every=CHECKPOINT_EVERY,
                checkpoint_dir=tmp_path,
                interrupt_after=3,
            )
        assert list(tmp_path.glob("shard_*.ckpt")), "no checkpoint left on disk"
        resumed = _run(engine, workers, resume_from=tmp_path)
        assert resumed == baseline
        # Resuming an already-finished run is idempotent.
        assert _run(engine, workers, resume_from=tmp_path) == baseline

    def test_serial_checkpointed_matches_workers_one(self, tmp_path):
        # checkpointing forces the sharded path, so workers=None matches 1.
        baseline = _run("sequential", 1)
        with pytest.raises(CheckpointInterrupted):
            _run(
                "sequential",
                None,
                checkpoint_every=CHECKPOINT_EVERY,
                checkpoint_dir=tmp_path,
                interrupt_after=2,
            )
        assert _run("sequential", None, resume_from=tmp_path) == baseline


# ------------------------------------------------------------ fail loudly


class TestCheckpointFailureModes:
    def test_truncated_shard_checkpoint_fails_resume(self, tmp_path):
        with pytest.raises(CheckpointInterrupted):
            _run(
                "sequential",
                1,
                checkpoint_every=CHECKPOINT_EVERY,
                checkpoint_dir=tmp_path,
                interrupt_after=2,
            )
        victim = sorted(tmp_path.glob("shard_*.ckpt"))[0]
        blob = victim.read_bytes()
        victim.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(CheckpointError):
            _run("sequential", 1, resume_from=tmp_path)

    def test_workload_mismatch_fails_resume(self, tmp_path):
        with pytest.raises(CheckpointInterrupted):
            _run(
                "sequential",
                1,
                checkpoint_every=CHECKPOINT_EVERY,
                checkpoint_dir=tmp_path,
                interrupt_after=2,
            )
        with pytest.raises(CheckpointError, match="manifest"):
            run_engine_trials(
                _factory,
                engine="sequential",
                trials=TRIALS,
                seed=SEED + 1,  # different run: must not mix checkpoints
                parallel_time=PARALLEL_TIME,
                snapshot_every=SNAPSHOT_EVERY,
                workers=1,
                resume_from=tmp_path,
            )

    def test_corrupt_manifest_fails_resume(self, tmp_path):
        with pytest.raises(CheckpointInterrupted):
            _run(
                "sequential",
                1,
                checkpoint_every=CHECKPOINT_EVERY,
                checkpoint_dir=tmp_path,
                interrupt_after=2,
            )
        (tmp_path / "manifest.json").write_text("{ not json")
        with pytest.raises(CheckpointError):
            _run("sequential", 1, resume_from=tmp_path)

    def test_cadence_must_be_multiple_of_snapshot_cadence(self, tmp_path):
        with pytest.raises(ConfigurationError, match="multiple"):
            _run("sequential", 1, checkpoint_every=3, checkpoint_dir=tmp_path)

    def test_checkpoint_every_requires_directory(self):
        with pytest.raises(ConfigurationError, match="checkpoint_dir"):
            _run("sequential", 1, checkpoint_every=CHECKPOINT_EVERY)

    def test_interrupt_after_requires_checkpointing(self):
        with pytest.raises(ConfigurationError, match="interrupt_after"):
            _run("sequential", 1, interrupt_after=1)

    def test_manifest_pins_full_workload(self, tmp_path):
        with pytest.raises(CheckpointInterrupted):
            _run(
                "sequential",
                1,
                checkpoint_every=CHECKPOINT_EVERY,
                checkpoint_dir=tmp_path,
                interrupt_after=2,
            )
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["engine"] == "sequential"
        assert manifest["trials"] == TRIALS
        assert manifest["seed"] == SEED
        assert manifest["parallel_time"] == PARALLEL_TIME
        assert manifest["checkpoint_every"] == CHECKPOINT_EVERY


class TestCheckpointCadenceBudget:
    """Write frequency follows ``checkpoint_every``, not the trial count.

    When trials are shorter than the cadence, the shard skips the
    per-trial completion write until the budget has elapsed — otherwise a
    cheap-trial workload pays one write per trial no matter how sparse a
    cadence the caller asked for.
    """

    def test_writes_follow_cadence_across_short_trials(self, tmp_path, monkeypatch):
        import repro.engine.runner as runner_module
        from repro.engine.rng import SeedTree

        written = []
        real_write = runner_module.write_checkpoint

        def counting_write(path, payload, *, kind):
            written.append(dict(payload))
            return real_write(path, payload, kind=kind)

        monkeypatch.setattr(runner_module, "write_checkpoint", counting_write)

        payload = {
            "factory": _factory,
            "engine": "sequential",
            "tree": SeedTree.from_seed(SEED),
            "start": 0,
            "stop": 6,
            "parallel_time": PARALLEL_TIME,
            "snapshot_every": SNAPSHOT_EVERY,
            "checkpoint_every": 2 * PARALLEL_TIME,
            "checkpoint_dir": str(tmp_path),
            "seed": SEED,
        }
        series = runner_module._run_looped_engine_shard_checkpointed(payload)

        assert len(series) == 6
        # Budget of 2 trials per write: after trials 2 and 4, plus the
        # final done write — not one write per trial.
        assert len(written) == 3
        assert [state["trial"] for state in written] == [2, 4, 6]
        assert [state["done"] for state in written] == [False, False, True]

        # The sparse checkpoints resume to the same result.
        resumed = runner_module._run_looped_engine_shard_checkpointed(
            {**payload, "resume_from": str(tmp_path)}
        )
        assert resumed == series
