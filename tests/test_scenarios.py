"""Tests for the declarative scenario API (spec, registry, runner, sweeps)."""

from __future__ import annotations

import math

import pytest

from repro.engine.adversary import ResizeSchedule
from repro.engine.errors import (
    ConfigurationError,
    InvalidScheduleError,
    UnsupportedEngineError,
)
from repro.experiments.base import ExperimentPreset, ExperimentResult
from repro.scenarios import (
    ScenarioPoint,
    ScenarioSpec,
    SweepSpec,
    get_scenario,
    has_scenario,
    register,
    run_scenario,
    run_sweep,
    scenario,
    scenario_names,
    unregister,
)
from repro.scenarios import schedules
from repro.scenarios.metrics import (
    base_fields,
    schedule_fields,
    steady_window_stats,
    tracking_stats,
)
from repro.scenarios.spec import apply_axis_overrides, default_points


def tiny_preset(**overrides) -> ExperimentPreset:
    data = dict(
        name="tiny", population_sizes=(80,), parallel_time=40, trials=2, seed=11
    )
    extra = overrides.pop("extra", {})
    data.update(overrides)
    return ExperimentPreset(extra=extra, **data)


def count_metric(trace, point, preset, params):
    return {"n": point.n, "snapshots": len(trace.parallel_time)}


def make_spec(**overrides) -> ScenarioSpec:
    data = dict(name="test_spec", description="test", metrics=(count_metric,))
    data.update(overrides)
    return ScenarioSpec(**data)


class TestScenarioPoint:
    def test_validates_basic_fields(self):
        with pytest.raises(ConfigurationError):
            ScenarioPoint(n=1, seed=0, parallel_time=10, trials=1)
        with pytest.raises(ConfigurationError):
            ScenarioPoint(n=10, seed=0, parallel_time=10, trials=0)
        with pytest.raises(ConfigurationError):
            ScenarioPoint(n=10, seed=0, parallel_time=0, trials=1)

    def test_validates_schedule_at_construction(self):
        # A target below 2 is rejected up front, for every engine.
        with pytest.raises(InvalidScheduleError):
            ScenarioPoint(
                n=10, seed=0, parallel_time=10, trials=1, resize_schedule=((5, 1),)
            )
        with pytest.raises(InvalidScheduleError):
            ScenarioPoint(
                n=10,
                seed=0,
                parallel_time=10,
                trials=1,
                resize_schedule=((5, 4), (5, 6)),
            )

    def test_normalizes_schedule_to_int_pairs(self):
        point = ScenarioPoint(
            n=10, seed=0, parallel_time=10, trials=1, resize_schedule=[(5.0, 4.0)]
        )
        assert point.resize_schedule == ((5, 4),)

    def test_series_label_and_adversary(self):
        point = ScenarioPoint(n=10, seed=0, parallel_time=10, trials=1)
        assert point.series_label == "n_10"
        labelled = ScenarioPoint(
            n=10, seed=0, parallel_time=10, trials=1, label="special"
        )
        assert labelled.series_label == "special"
        adversary = ScenarioPoint(
            n=10, seed=0, parallel_time=10, trials=1, resize_schedule=((3, 5),)
        ).adversary()
        assert isinstance(adversary, ResizeSchedule)
        assert [event.time for event in adversary.events] == [3]


class TestScenarioSpec:
    def test_rejects_unknown_engines(self):
        with pytest.raises(ConfigurationError):
            make_spec(engines=("warp",))

    def test_rejects_pinned_engine_outside_supported(self):
        with pytest.raises(ConfigurationError):
            make_spec(engines=("sequential",), engine="batched")

    def test_requires_metrics_or_executor(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(name="no_metrics", description="d")

    def test_id_defaults_to_name(self):
        assert make_spec().id == "test_spec"
        assert make_spec(experiment_id="other").id == "other"

    def test_description_for_prefers_describe(self):
        spec = make_spec(describe=lambda preset: f"at {preset.parallel_time}")
        assert spec.description_for(tiny_preset()) == "at 40"
        assert make_spec().description_for(tiny_preset()) == "test"

    def test_with_overrides(self):
        spec = make_spec().with_overrides(keep_series=True)
        assert spec.keep_series is True
        assert spec.name == "test_spec"

    def test_default_points_one_per_size(self):
        from repro.core.params import empirical_parameters

        preset = tiny_preset(population_sizes=(10, 20))
        points = default_points(preset, empirical_parameters())
        assert [p.n for p in points] == [10, 20]
        assert [p.seed for p in points] == [preset.seed + 10, preset.seed + 20]
        assert all(p.trials == preset.trials for p in points)


class TestRegistry:
    def test_builtin_catalog_registered(self):
        names = scenario_names()
        for expected in (
            "fig2",
            "fig3",
            "fig4",
            "fig5",
            "convergence",
            "holding",
            "memory",
            "phase_clock",
            "baseline",
            "oscillate",
            "boom_bust",
            "churn",
            "repeated_decimation",
        ):
            assert expected in names

    def test_register_and_duplicate_rejection(self):
        spec = make_spec(name="registry_duplicate_check")
        try:
            register(spec)
            assert has_scenario("registry_duplicate_check")
            with pytest.raises(ConfigurationError):
                register(spec)
            replacement = spec.with_overrides(description="other")
            register(replacement, replace=True)
            assert get_scenario("registry_duplicate_check").description == "other"
        finally:
            unregister("registry_duplicate_check")
        assert not has_scenario("registry_duplicate_check")

    def test_scenario_decorator_registers_and_rebinds(self):
        try:

            @scenario
            def decorator_check():
                return make_spec(name="decorator_check")

            assert isinstance(decorator_check, ScenarioSpec)
            assert has_scenario("decorator_check")
        finally:
            unregister("decorator_check")

    def test_decorator_rejects_non_spec(self):
        with pytest.raises(ConfigurationError):

            @scenario
            def bad_builder():
                return 42

    def test_unknown_scenario_error_lists_names(self):
        with pytest.raises(ConfigurationError) as excinfo:
            get_scenario("nonexistent")
        assert "fig2" in str(excinfo.value)


class TestRunScenario:
    def test_runs_custom_spec_with_explicit_preset(self):
        result = run_scenario(make_spec(keep_series=True), preset=tiny_preset())
        assert isinstance(result, ExperimentResult)
        assert result.experiment == "test_spec"
        assert result.rows == [{"n": 80, "snapshots": 40}]
        assert "n_80" in result.series
        assert result.metadata["scenario"] == "test_spec"

    def test_auto_engine_selection_small_n_is_exact(self):
        # n=80 <= SMALL_POPULATION_THRESHOLD: auto picks the exact array engine.
        result = run_scenario(make_spec(), preset=tiny_preset())
        assert result.metadata["engine"] == "array"

    def test_auto_engine_selection_large_n_multi_trial_is_ensemble(self):
        result = run_scenario(
            make_spec(), preset=tiny_preset(population_sizes=(300,), parallel_time=20)
        )
        assert result.metadata["engine"] == "ensemble"

    def test_pinned_engine_used_by_default_and_auto_overrides(self):
        spec = make_spec(engine="batched")
        pinned = run_scenario(spec, preset=tiny_preset())
        assert pinned.metadata["engine"] == "batched"
        auto = run_scenario(spec, preset=tiny_preset(), engine="auto")
        assert auto.metadata["engine"] == "array"

    def test_unknown_engine_rejected_before_work(self):
        with pytest.raises(ConfigurationError) as excinfo:
            run_scenario(make_spec(), preset=tiny_preset(), engine="warp")
        assert "auto" in str(excinfo.value)

    def test_unsupported_engine_rejected_before_work(self):
        spec = make_spec(engines=("sequential",), engine="sequential")
        with pytest.raises(UnsupportedEngineError):
            run_scenario(spec, preset=tiny_preset(), engine="batched")

    def test_missing_presets_give_one_line_error(self):
        with pytest.raises(ConfigurationError) as excinfo:
            run_scenario(make_spec(), effort="quick")
        assert "no presets" in str(excinfo.value)

    def test_unknown_effort_gives_one_line_error(self):
        with pytest.raises(ConfigurationError) as excinfo:
            run_scenario("fig2", effort="gigantic")
        assert "gigantic" in str(excinfo.value)

    def test_empty_point_expansion_rejected(self):
        spec = make_spec(points=lambda preset, params: ())
        with pytest.raises(ConfigurationError):
            run_scenario(spec, preset=tiny_preset())

    def test_executor_receives_resolved_engine(self):
        seen = {}

        def executor(spec, preset, params, engine):
            seen["engine"] = engine
            return ExperimentResult(
                experiment=spec.id, description="d", rows=[{"ok": True}]
            )

        spec = ScenarioSpec(
            name="executor_check",
            description="d",
            executor=executor,
            engines=("sequential",),
            engine="sequential",
        )
        result = run_scenario(spec, preset=tiny_preset())
        assert seen["engine"] == "sequential"
        assert result.rows == [{"ok": True}]

    def test_metrics_merge_in_order(self):
        def first(trace, point, preset, params):
            return {"a": 1, "shared": "first"}

        def second(trace, point, preset, params):
            return {"shared": "second", "b": 2}

        spec = make_spec(metrics=(first, second))
        result = run_scenario(spec, preset=tiny_preset())
        assert result.rows[0] == {"a": 1, "shared": "second", "b": 2}

    def test_resize_schedule_applied(self):
        spec = make_spec(
            points=lambda preset, params: (
                ScenarioPoint(
                    n=80,
                    seed=preset.seed,
                    parallel_time=preset.parallel_time,
                    trials=1,
                    resize_schedule=((10, 20),),
                ),
            ),
            metrics=(
                lambda trace, point, preset, params: {
                    "final_size": trace.population_size[-1]
                },
            ),
        )
        result = run_scenario(spec, preset=tiny_preset())
        assert result.rows[0]["final_size"] == 20


class TestSweep:
    def test_from_mapping_validation(self):
        with pytest.raises(ConfigurationError):
            SweepSpec.from_mapping("fig2", {})
        with pytest.raises(ConfigurationError):
            SweepSpec.from_mapping("fig2", {"keep": ()})

    def test_combinations_grid_order(self):
        # An unregistered scenario name skips axis-key validation, so the
        # grid expansion can be pinned with abstract axes.
        sweep = SweepSpec.from_mapping("not_registered", {"a": (1, 2), "b": (3,)})
        assert sweep.combinations() == [{"a": 1, "b": 3}, {"a": 2, "b": 3}]

    def test_from_mapping_rejects_unknown_axes(self):
        with pytest.raises(ConfigurationError, match="unknown sweep axis"):
            SweepSpec.from_mapping("fig2", {"definitely_not_an_axis": (1,)})
        # The error enumerates the valid axes so the fix is obvious.
        with pytest.raises(ConfigurationError, match="valid axes"):
            SweepSpec.from_mapping("fig4", {"kep": (50,)})
        # Known preset fields, protocol constants and workload knobs pass.
        sweep = SweepSpec.from_mapping("fig4", {"keep": (50, 100), "drop_time": (200,)})
        assert len(sweep.combinations()) == 2

    def test_axis_override_routing(self):
        preset = tiny_preset()
        updated = apply_axis_overrides(
            preset, {"n": 500, "trials": 4, "tau1": 8.0, "keep": 25}
        )
        assert updated.population_sizes == (500,)
        assert updated.trials == 4
        assert updated.extra["params_overrides"] == {"tau1": 8.0}
        assert updated.extra["keep"] == 25
        # The base preset is untouched (frozen semantics).
        assert preset.population_sizes == (80,)

    def test_run_sweep_labels_and_params(self):
        sweep = SweepSpec.from_mapping("test_sweep_scenario", {"grv_samples": (4, 8)})
        spec = make_spec(name="test_sweep_scenario")
        try:
            register(spec)
            results = run_sweep(sweep, preset=tiny_preset())
        finally:
            unregister("test_sweep_scenario")
        assert [label for label, _ in results] == ["grv_samples=4", "grv_samples=8"]
        assert [r.metadata["params"]["grv_samples"] for _, r in results] == [4, 8]
        assert [r.metadata["sweep"] for _, r in results] == [
            "grv_samples=4",
            "grv_samples=8",
        ]

    def test_sweeping_k_rederives_grv_samples(self):
        sweep = SweepSpec.from_mapping("fig3", {"k": (4,)})
        results = run_sweep(sweep, preset=tiny_preset())
        params = results[0][1].metadata["params"]
        assert params["k"] == 4
        assert params["grv_samples"] == 4  # Algorithm 3 default: one per k

    def test_run_sweep_fails_fast_on_bad_params(self):
        # tau1 below tau2 violates the protocol constraints; the grid is
        # validated before any simulation runs.
        sweep = SweepSpec.from_mapping("fig3", {"tau1": (0.1,)})
        with pytest.raises(ConfigurationError):
            run_sweep(sweep, preset=tiny_preset())


class TestSchedules:
    def test_oscillation_alternates(self):
        pairs = schedules.oscillation(100, low=10, period=5, horizon=22)
        assert pairs == ((5, 10), (10, 100), (15, 10), (20, 100))

    def test_oscillation_validation(self):
        with pytest.raises(InvalidScheduleError):
            schedules.oscillation(100, low=1, period=5, horizon=20)
        with pytest.raises(InvalidScheduleError):
            schedules.oscillation(100, low=100, period=5, horizon=20)
        with pytest.raises(InvalidScheduleError):
            schedules.oscillation(100, low=10, period=0, horizon=20)

    def test_growth_crash_shape(self):
        pairs = schedules.growth_crash(
            100, growth_steps=3, period=10, crash_target=10, horizon=100
        )
        assert pairs == ((10, 200), (20, 400), (30, 800), (40, 10))

    def test_growth_crash_validation(self):
        with pytest.raises(InvalidScheduleError):
            schedules.growth_crash(
                100, growth_factor=1.0, growth_steps=2, period=10, crash_target=10, horizon=100
            )
        with pytest.raises(InvalidScheduleError):
            schedules.growth_crash(
                100, growth_steps=2, period=10, crash_target=1, horizon=100
            )

    def test_random_churn_deterministic_and_bounded(self):
        a = schedules.random_churn(100, low=10, high=50, period=5, horizon=60, seed=3)
        b = schedules.random_churn(100, low=10, high=50, period=5, horizon=60, seed=3)
        c = schedules.random_churn(100, low=10, high=50, period=5, horizon=60, seed=4)
        assert a == b
        assert a != c
        assert len(a) == 11
        assert all(10 <= target <= 50 for _, target in a)

    def test_repeated_decimation_halves_to_floor(self):
        pairs = schedules.repeated_decimation(
            1000, period=10, horizon=200, floor=100
        )
        assert pairs == ((10, 500), (20, 250), (30, 125), (40, 100))

    def test_merge_schedules(self):
        merged = schedules.merge_schedules(((10, 5),), ((5, 20),))
        assert merged == ((5, 20), (10, 5))
        with pytest.raises(InvalidScheduleError):
            schedules.merge_schedules(((10, 5),), ((10, 20),))

    def test_as_adversary_and_composite(self):
        adversary = schedules.as_adversary([(5, 10)])
        assert isinstance(adversary, ResizeSchedule)
        composite = schedules.composite_adversary(adversary)
        assert composite.describe()["parts"][0]["class"] == "ResizeSchedule"


class TestMetrics:
    def _trace(self):
        from repro.experiments.figures import EstimateTrace

        return EstimateTrace(
            n=64,
            trials=1,
            parallel_time=[1.0, 2.0, 3.0, 4.0],
            population_size=[64.0, 64.0, 16.0, 16.0],
            minimum=[1.0, 5.0, 5.0, 5.0],
            median=[2.0, 6.0, 6.0, 5.0],
            maximum=[3.0, 8.0, 8.0, 8.0],
        )

    def _point(self, **overrides):
        data = dict(n=64, seed=0, parallel_time=4, trials=1)
        data.update(overrides)
        return ScenarioPoint(**data)

    def test_base_fields(self):
        from repro.core.params import empirical_parameters

        row = base_fields(self._trace(), self._point(), tiny_preset(), empirical_parameters())
        assert row == {"n": 64, "log2_n": 6.0, "trials": 1, "parallel_time": 4}

    def test_steady_window_stats(self):
        from repro.core.params import empirical_parameters

        row = steady_window_stats(
            self._trace(), self._point(), tiny_preset(), empirical_parameters()
        )
        assert row == {
            "steady_minimum": 5.0,
            "steady_median": 6.0,
            "steady_maximum": 8.0,
        }

    def test_tracking_stats_uses_moving_target(self):
        from repro.core.params import empirical_parameters

        params = empirical_parameters()
        row = tracking_stats(
            self._trace(), self._point(), tiny_preset(), params
        )
        offset = math.log2(params.grv_samples)
        # Second-half snapshots have size 16 -> target log2(16) + offset.
        expected = [abs(6.0 - (4.0 + offset)), abs(5.0 - (4.0 + offset))]
        assert row["mean_tracking_error"] == pytest.approx(sum(expected) / 2)
        assert row["max_tracking_error"] == pytest.approx(max(expected))
        assert row["final_population"] == 16.0
        assert row["final_target"] == pytest.approx(4.0 + offset)

    def test_schedule_fields(self):
        from repro.core.params import empirical_parameters

        point = self._point(resize_schedule=((2, 16), (3, 32)))
        row = schedule_fields(self._trace(), point, tiny_preset(), empirical_parameters())
        assert row == {
            "resize_events": 2,
            "smallest_target": 16,
            "largest_target": 32,
        }


class TestCatalogScenarios:
    @pytest.mark.parametrize(
        "name", ("oscillate", "boom_bust", "churn", "repeated_decimation")
    )
    def test_catalog_scenario_runs_and_resizes(self, name):
        preset = tiny_preset(
            population_sizes=(300,),
            parallel_time=120,
            trials=2,
            extra={"period": 30},
        )
        result = run_scenario(name, preset=preset)
        assert result.experiment == name
        row = result.rows[0]
        assert row["resize_events"] >= 1
        assert row["n"] == 300
        assert row["final_median"] > 0
        assert "n_300" in result.series
        # The adversary really changed the population at some point.
        sizes = set(result.series["n_300"]["population_size"])
        assert len(sizes) > 1

    def test_oscillate_follows_schedule(self):
        preset = tiny_preset(
            population_sizes=(300,), parallel_time=100, trials=1, extra={"period": 30}
        )
        result = run_scenario("oscillate", preset=preset)
        series = result.series["n_300"]
        by_time = dict(zip(series["parallel_time"], series["population_size"]))
        assert by_time[100.0] == 30  # low phase after the third flip at t=90
        assert by_time[70.0] == 300  # back at full size after the second flip

    @pytest.mark.parametrize("engine", ("sequential", "array", "batched"))
    def test_catalog_scenarios_run_on_explicit_engines(self, engine):
        preset = tiny_preset(
            population_sizes=(60,), parallel_time=40, trials=1, extra={"period": 10}
        )
        result = run_scenario("repeated_decimation", preset=preset, engine=engine)
        assert result.metadata["engine"] == engine

    def test_catalog_has_quick_default_paper_presets(self):
        from repro.experiments.config import PRESETS

        for name in ("oscillate", "boom_bust", "churn", "repeated_decimation"):
            assert set(PRESETS[name]) == {"quick", "default", "paper"}


class TestSweepFailFast:
    def test_bad_workload_axis_rejected_before_any_simulation(self, monkeypatch):
        """A bad knob in any grid combination aborts before the first run."""
        import repro.experiments.figures as figures

        calls = []

        def counting_trace(*args, **kwargs):
            calls.append(args)
            raise AssertionError("simulation should not have started")

        monkeypatch.setattr(figures, "run_estimate_trace", counting_trace)
        sweep = SweepSpec.from_mapping("fig4", {"keep": (40, 1), "drop_time": (5,)})
        with pytest.raises(InvalidScheduleError):
            run_sweep(sweep, preset=tiny_preset())
        assert calls == []
