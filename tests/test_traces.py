"""Trace loading, typed schedules, and multi-phase timelines.

Covers the ISSUE-specified edge cases (empty CSV, non-monotonic
timestamps, duplicate steps, sizes below 2), both CSV layouts, the
resampling contract, the :class:`Schedule` back-compat guarantees
(tuple equality, iteration, pickling), and the multi-phase machinery
including phase boundaries landing in ``ExperimentResult`` metadata.
"""

from __future__ import annotations

import math
import pickle

import pytest

from repro.engine.adversary import ResizeSchedule
from repro.engine.errors import InvalidScheduleError
from repro.experiments.base import ExperimentPreset
from repro.scenarios import schedules
from repro.scenarios.phases import Phase, chain_phases, phase_boundaries
from repro.scenarios.runner import run_scenario
from repro.scenarios.schedules import Schedule, schedule_kind_of
from repro.scenarios.traces import Trace, bundled_trace, bundled_trace_names


class TestTraceParsing:
    def test_absolute_layout(self):
        trace = Trace.from_text("timestamp,size\n0,100\n60,400\n120,80\n")
        assert trace.times == (0.0, 60.0, 120.0)
        assert trace.sizes == (100.0, 400.0, 80.0)
        assert trace.initial_size == 100.0

    def test_delta_layout_accumulates(self):
        trace = Trace.from_text("step,delta\n0,600\n50,-30\n100,-420\n")
        assert trace.sizes == (600.0, 570.0, 150.0)

    def test_empty_csv_rejected(self):
        with pytest.raises(InvalidScheduleError, match="empty CSV"):
            Trace.from_text("")
        with pytest.raises(InvalidScheduleError, match="empty CSV"):
            Trace.from_text("\n\n")

    def test_header_only_rejected(self):
        with pytest.raises(InvalidScheduleError, match="no data rows"):
            Trace.from_text("timestamp,size\n")

    def test_non_monotonic_timestamps_rejected(self):
        with pytest.raises(InvalidScheduleError, match="monoton"):
            Trace.from_text("timestamp,size\n0,100\n60,200\n30,300\n")

    def test_duplicate_steps_rejected(self):
        # Duplicates are a special case of non-monotonic time.
        with pytest.raises(InvalidScheduleError, match="monoton"):
            Trace.from_text("step,delta\n0,100\n50,10\n50,20\n")

    def test_sizes_below_two_rejected(self):
        with pytest.raises(InvalidScheduleError, match="minimum of 2"):
            Trace.from_text("timestamp,size\n0,100\n60,1\n")
        # ... including via a delta that drains the population.
        with pytest.raises(InvalidScheduleError, match="minimum of 2"):
            Trace.from_text("step,delta\n0,100\n50,-99\n")

    def test_unrecognised_header_rejected(self):
        with pytest.raises(InvalidScheduleError, match="header"):
            Trace.from_text("foo,bar\n1,2\n")

    def test_bad_cell_carries_row_number(self):
        with pytest.raises(InvalidScheduleError, match="line 3"):
            Trace.from_text("timestamp,size\n0,100\nsoon,200\n")
        with pytest.raises(InvalidScheduleError):
            Trace.from_text("timestamp,size\n0,nan\n")


class TestResample:
    def test_scales_to_population_and_horizon(self):
        trace = Trace.from_text("timestamp,size\n0,100\n50,400\n100,50\n")
        schedule = trace.resample(horizon=200, n=1000)
        assert isinstance(schedule, Schedule)
        assert schedule.kind == "trace"
        # First sample is the initial size (no event); later samples scale
        # by n / initial and land at proportional steps.
        assert schedule == ((100, 4000), (199, 500))
        ResizeSchedule.from_pairs(schedule)

    def test_steps_stay_inside_horizon(self):
        trace = Trace.from_text("timestamp,size\n0,10\n1,20\n2,30\n3,40\n")
        schedule = trace.resample(horizon=2, n=10)
        assert all(1 <= step <= 1 for step, _ in schedule)

    def test_rejects_tiny_targets(self):
        trace = Trace.from_text("timestamp,size\n0,10\n1,20\n")
        with pytest.raises(InvalidScheduleError):
            trace.resample(horizon=100, n=1)
        with pytest.raises(InvalidScheduleError):
            trace.resample(horizon=1, n=10)


class TestBundledTraces:
    def test_names(self):
        assert bundled_trace_names() == ("diurnal", "failover", "flash_crowd")

    @pytest.mark.parametrize("name", ["diurnal", "failover", "flash_crowd"])
    def test_loadable_and_resamplable(self, name):
        trace = bundled_trace(name)
        schedule = trace.resample(horizon=600, n=2000)
        assert schedule.kind == "trace"
        ResizeSchedule.from_pairs(schedule)

    def test_unknown_name_lists_available(self):
        with pytest.raises(InvalidScheduleError, match="flash_crowd"):
            bundled_trace("does_not_exist")


class TestTypedSchedule:
    def test_tuple_backcompat(self):
        schedule = Schedule(((5, 10), (9, 20)), kind="custom", label="x")
        assert schedule == ((5, 10), (9, 20))
        assert list(schedule) == [(5, 10), (9, 20)]
        assert schedule.pairs == ((5, 10), (9, 20))
        assert schedule.kind == "custom"

    def test_pickle_roundtrip(self):
        schedule = schedules.oscillation(100, low=10, period=5, horizon=20)
        clone = pickle.loads(pickle.dumps(schedule))
        assert clone == schedule
        assert clone.kind == "oscillation"
        assert clone.label == schedule.label

    def test_builders_carry_kinds(self):
        assert schedules.oscillation(100, low=10, period=5, horizon=20).kind == "oscillation"
        assert (
            schedules.growth_crash(
                100, growth_factor=2.0, growth_steps=2, period=5, crash_target=10, horizon=30
            ).kind
            == "growth_crash"
        )
        assert (
            schedules.random_churn(100, low=10, high=100, period=5, horizon=30, seed=1).kind
            == "random_churn"
        )
        assert (
            schedules.repeated_decimation(100, factor=2.0, period=5, horizon=30).kind
            == "repeated_decimation"
        )
        assert schedule_kind_of(((5, 10),)) is None

    def test_adversary_and_merge_accept_both(self):
        typed = schedules.oscillation(100, low=10, period=5, horizon=20)
        plain = tuple(typed)
        assert list(schedules.as_adversary(typed).events) == list(
            schedules.as_adversary(plain).events
        )
        # Plain parts carry no kind, so they do not dilute provenance ...
        merged = schedules.merge_schedules(typed, ((23, 50),))
        assert isinstance(merged, Schedule)
        assert merged.kind == "oscillation"
        # ... but two distinct kinds collapse to "merged".
        mixed = schedules.merge_schedules(
            schedules.oscillation(100, low=10, period=7, horizon=40),
            schedules.repeated_decimation(100, factor=2.0, period=9, horizon=40),
        )
        assert mixed.kind == "merged"


class TestPhases:
    def test_validation(self):
        with pytest.raises(InvalidScheduleError):
            Phase("", 10)
        with pytest.raises(InvalidScheduleError):
            Phase("x", 0)
        with pytest.raises(InvalidScheduleError):
            Phase("x", 10, start_size=1)
        with pytest.raises(InvalidScheduleError):
            chain_phases(())
        # The very first phase cannot request a resize at time zero.
        with pytest.raises(InvalidScheduleError, match="time zero"):
            chain_phases((Phase("a", 10, start_size=50),))

    def test_chain_offsets_and_boundaries(self):
        phases = (
            Phase("steady", 100),
            Phase("outage", 50, start_size=20),
            Phase("recovery", 80, start_size=400),
        )
        schedule = chain_phases(phases)
        assert isinstance(schedule, Schedule)
        assert schedule.kind == "multi_phase"
        assert schedule == ((100, 20), (150, 400))
        bounds = phase_boundaries(phases)
        assert [dict(b) for b in bounds] == [
            {"name": "steady", "start": 0, "stop": 100},
            {"name": "outage", "start": 100, "stop": 150},
            {"name": "recovery", "start": 150, "stop": 230},
        ]

    def test_inner_phase_events_shift(self):
        phases = (
            Phase("a", 40),
            Phase("b", 40, start_size=30, schedule=((10, 60),)),
        )
        assert chain_phases(phases) == ((40, 30), (50, 60))


class TestFailoverScenario:
    def test_phase_boundaries_in_metadata(self):
        preset = ExperimentPreset(
            name="tiny",
            population_sizes=(256,),
            parallel_time=120,
            trials=2,
            seed=13,
            extra={"outage_divisor": 8},
        )
        result = run_scenario("failover", preset=preset)
        phases = result.metadata["phases"]["n_256"]
        assert [p["name"] for p in phases] == ["steady", "outage", "recovery"]
        assert phases[0]["start"] == 0
        assert phases[-1]["stop"] == 120
        row = result.rows[0]
        for name in ("steady", "outage", "recovery"):
            assert f"phase_{name}_mean_error" in row
            assert f"phase_{name}_max_error" in row
            assert math.isfinite(row[f"phase_{name}_mean_error"])

    @pytest.mark.parametrize("name", ["flash_crowd", "diurnal"])
    def test_trace_scenarios_run(self, name):
        preset = ExperimentPreset(
            name="tiny",
            population_sizes=(200,),
            parallel_time=90,
            trials=2,
            seed=13,
        )
        result = run_scenario(name, preset=preset)
        row = result.rows[0]
        assert row["n"] == 200
        assert row["resize_events"] > 0
        assert math.isfinite(row["mean_tracking_error"])
