"""Determinism regression: golden per-trial trajectories under sharding.

``tests/data/golden_parallel.json`` pins the *per-trial* snapshot series of
one small counting workload (n=32, 18 trials — two row-shards under the
default shard size — 10 parallel time units, fixed seed) for every
parallelizable engine, as produced by the sharded execution layer.  The
tests assert that ``workers`` ∈ {1, 2, 4} all reproduce the pinned
trajectories **bit-identically**: the shard layout is a pure function of
the workload and every random stream is derived from its seed-tree
address, so the worker count must be invisible in the results.

For the looped engines the golden values also pin the serial
(``workers=None``) path, which shares the per-trial streams.

Regenerate after an intentional change to stream derivation or shard
layout with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/test_parallel_determinism.py -q
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.core.dynamic_counting import DynamicSizeCounting
from repro.engine.registry import make_engine
from repro.engine.runner import run_engine_trials

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_parallel.json"

#: The pinned workload: small enough for the sequential engine, large
#: enough in trials (18 > DEFAULT_SHARD_SIZE) to span two row-shards, so
#: the shard *boundary* — not just the worker count — is exercised.
N = 32
TRIALS = 18
PARALLEL_TIME = 10
SEED = 20240726

ENGINES = ("sequential", "array", "batched", "ensemble")
WORKER_COUNTS = (1, 2, 4)


def _factory(engine_name, rng, ensemble_trials):
    """Module-level engine factory so worker processes can unpickle it."""
    return make_engine(
        engine_name,
        DynamicSizeCounting(),
        N,
        rng=rng,
        trials=ensemble_trials if engine_name == "ensemble" else None,
    )


def _run(engine: str, workers: int | None):
    return run_engine_trials(
        _factory,
        engine=engine,
        trials=TRIALS,
        seed=SEED,
        parallel_time=PARALLEL_TIME,
        workers=workers,
    )


@pytest.fixture(scope="module")
def golden() -> dict:
    if os.environ.get("REPRO_REGEN_GOLDEN") == "1":
        data = {engine: _run(engine, 1) for engine in ENGINES}
        GOLDEN_PATH.write_text(json.dumps(data, indent=1, sort_keys=True) + "\n")
    if not GOLDEN_PATH.exists():
        pytest.fail(
            f"golden file {GOLDEN_PATH} missing; regenerate with "
            "REPRO_REGEN_GOLDEN=1"
        )
    return json.loads(GOLDEN_PATH.read_text())


@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize("engine", ENGINES)
def test_per_trial_trajectories_match_golden(golden, engine, workers):
    """Every worker count reproduces the pinned per-trial series exactly."""
    series = _run(engine, workers)
    assert len(series) == TRIALS
    assert series == golden[engine]


@pytest.mark.parametrize("engine", ["sequential", "array", "batched"])
def test_serial_path_matches_golden_for_looped_engines(golden, engine):
    """workers=None (the historical serial loop) shares the per-trial
    streams with the sharded path, so it pins to the same golden."""
    assert _run(engine, None) == golden[engine]


def test_golden_covers_two_shards():
    """Guard the premise: the pinned trial count spans multiple shards."""
    from repro.engine.parallel import plan_shards

    assert len(plan_shards(TRIALS)) >= 2
