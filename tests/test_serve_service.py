"""SimulationService: validation, caching, single-flight, failure mapping.

Most tests inject fake runners (instant, countable) so they exercise the
serving logic, not the simulator; two end-to-end tests at the bottom run the
real ``run_scenario``/``run_sweep`` path on a tiny workload.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.engine.errors import ConfigurationError, UnsupportedEngineError
from repro.experiments.base import ExperimentResult
from repro.scenarios.registry import scenario_names
from repro.scenarios.listing import scenario_listing
from repro.serve import (
    JobFailedError,
    JobPendingError,
    QueueFullError,
    RunRequest,
    SimulationService,
    UnknownRunError,
)

QUICK = {"n": 64, "trials": 2, "parallel_time": 30}


def tiny_result(tag: str = "fake") -> ExperimentResult:
    return ExperimentResult(
        experiment="fig2",
        description=f"fake result {tag}",
        rows=[{"n": 64, "estimate": 6.0}],
        metadata={"preset": "quick", "engine": "array"},
    )


class Recorder:
    """Countable fake runners with an optional gate for concurrency tests."""

    def __init__(self, *, gate: threading.Event | None = None, fail: bool = False):
        self.calls = []
        self.gate = gate
        self.fail = fail

    def run_scenario(self, spec, *, preset, engine=None, workers=None, jit=False):
        self.calls.append(("scenario", spec.name, preset.population_sizes))
        if self.gate is not None:
            self.gate.wait(timeout=30)
        if self.fail:
            raise RuntimeError("simulated meltdown")
        return tiny_result(f"call{len(self.calls)}")

    def run_sweep(self, sweep, *, preset, engine=None, workers=None, jit=False):
        self.calls.append(("sweep", sweep.scenario))
        return [
            (label, tiny_result(label)) for label, _ in sweep.expand(preset)
        ]


def make_service(tmp_path, recorder=None, **kwargs):
    recorder = recorder or Recorder()
    service = SimulationService(
        tmp_path / "cache",
        scenario_runner=recorder.run_scenario,
        sweep_runner=recorder.run_sweep,
        **kwargs,
    )
    return service, recorder


def request(**overrides) -> RunRequest:
    data = dict(scenario="fig2", effort="quick", overrides=QUICK)
    data.update(overrides)
    return RunRequest(**data)


class TestValidation:
    """Bad requests are rejected before admission — no job, no simulation."""

    def test_unknown_scenario(self, tmp_path):
        service, recorder = make_service(tmp_path)
        with pytest.raises(ConfigurationError):
            service.submit(request(scenario="not_a_scenario"))
        assert recorder.calls == []

    def test_unknown_effort(self, tmp_path):
        service, _ = make_service(tmp_path)
        with pytest.raises(ConfigurationError):
            service.submit(request(effort="heroic"))

    def test_unknown_engine(self, tmp_path):
        service, _ = make_service(tmp_path)
        with pytest.raises(ConfigurationError):
            service.submit(request(engine="warp"))

    def test_unsupported_engine(self, tmp_path):
        service, _ = make_service(tmp_path)
        # The memory table is a bespoke recorder workload pinned to the
        # sequential engine.
        with pytest.raises(UnsupportedEngineError):
            service.submit(RunRequest(scenario="memory", engine="ensemble"))

    def test_bad_workers(self, tmp_path):
        service, _ = make_service(tmp_path)
        with pytest.raises(ConfigurationError):
            service.submit(request(workers=0))
        with pytest.raises(ConfigurationError):
            service.submit(request(workers="turbo"))

    def test_bad_override_values(self, tmp_path):
        service, _ = make_service(tmp_path)
        with pytest.raises(ConfigurationError):
            service.submit(request(overrides={"n": 1}))  # population too small

    def test_bad_sweep_axis(self, tmp_path):
        service, _ = make_service(tmp_path)
        with pytest.raises(ConfigurationError):
            service.submit(request(sweep={"n": []}))


class TestLifecycle:
    def test_miss_then_hit(self, tmp_path):
        service, recorder = make_service(tmp_path)
        try:
            first = service.submit(request())
            assert first["cached"] is False
            run_id = first["run_id"]
            service.queue.wait(run_id)
            status = service.status(run_id)
            assert status["state"] == "done"
            assert status["seconds"] is not None
            second = service.submit(request())
            assert second["cached"] is True
            assert second["run_id"] == run_id
            assert len(recorder.calls) == 1, "the repeat must not re-simulate"
        finally:
            service.close()

    def test_result_payload_is_byte_identical_across_fetches(self, tmp_path):
        service, _ = make_service(tmp_path)
        try:
            run_id = service.submit(request())["run_id"]
            service.queue.wait(run_id)
            a = json.dumps(service.result_payload(run_id), sort_keys=True)
            service.submit(request())  # a cache hit in between must not disturb
            b = json.dumps(service.result_payload(run_id), sort_keys=True)
            assert a == b
        finally:
            service.close()

    def test_result_csv_matches_artifact_bytes(self, tmp_path):
        service, _ = make_service(tmp_path)
        try:
            run_id = service.submit(request())["run_id"]
            service.queue.wait(run_id)
            csv_body = service.result_csv(run_id)
            entry = service.cache.get(run_id)
            artifact = next(entry.path.rglob("rows.csv")).read_bytes()
            assert csv_body.encode() == artifact
            with pytest.raises(UnknownRunError):
                service.result_csv(run_id, index=5)
        finally:
            service.close()

    def test_distinct_requests_get_distinct_runs(self, tmp_path):
        service, recorder = make_service(tmp_path)
        try:
            a = service.submit(request())["run_id"]
            b = service.submit(request(seed=123))["run_id"]
            c = service.submit(request(jit=True))["run_id"]
            assert len({a, b, c}) == 3
            for run_id in (a, b, c):
                service.queue.wait(run_id)
            assert len(recorder.calls) == 3
        finally:
            service.close()

    def test_sweep_request_runs_sweep_and_caches_combos(self, tmp_path):
        service, recorder = make_service(tmp_path)
        try:
            req = request(overrides=None, sweep={"n": [32, 64], "trials": [2]})
            run_id = service.submit(req)["run_id"]
            service.queue.wait(run_id)
            payload = service.result_payload(run_id)
            assert payload["kind"] == "sweep"
            assert [r["label"] for r in payload["results"]] == [
                "n=32,trials=2",
                "n=64,trials=2",
            ]
            assert service.submit(req)["cached"] is True
            assert len(recorder.calls) == 1
        finally:
            service.close()


class TestFailuresAndEdges:
    def test_unknown_run_everywhere(self, tmp_path):
        service, _ = make_service(tmp_path)
        try:
            missing = "0" * 64
            with pytest.raises(UnknownRunError):
                service.status(missing)
            with pytest.raises(UnknownRunError):
                service.result_payload(missing)
            with pytest.raises(UnknownRunError):
                service.status("not-even-a-key")
        finally:
            service.close()

    def test_pending_result_raises_pending(self, tmp_path):
        gate = threading.Event()
        service, _ = make_service(tmp_path, Recorder(gate=gate))
        try:
            run_id = service.submit(request())["run_id"]
            with pytest.raises(JobPendingError):
                service.result_payload(run_id)
            gate.set()
            service.queue.wait(run_id)
            assert service.result_payload(run_id)["run_id"] == run_id
        finally:
            gate.set()
            service.close()

    def test_failed_job_reports_and_is_resubmittable(self, tmp_path):
        recorder = Recorder(fail=True)
        service, _ = make_service(tmp_path, recorder)
        try:
            run_id = service.submit(request())["run_id"]
            job = service.queue.wait(run_id)
            assert job.state.value == "failed"
            assert "simulated meltdown" in service.status(run_id)["error"]
            with pytest.raises(JobFailedError):
                service.result_payload(run_id)
            # The failure is not cached: a resubmission re-runs.
            recorder.fail = False
            assert service.submit(request())["cached"] is False
            service.queue.wait(run_id)
            assert service.result_payload(run_id)["run_id"] == run_id
            assert len(recorder.calls) == 2
        finally:
            service.close()

    def test_queue_full_propagates(self, tmp_path):
        gate = threading.Event()
        service, _ = make_service(
            tmp_path, Recorder(gate=gate), max_workers=1, max_pending=1
        )
        try:
            service.submit(request())  # occupies the worker
            deadline = time.monotonic() + 5
            while service.queue.depth()["running"] == 0:
                assert time.monotonic() < deadline
                time.sleep(0.01)
            service.submit(request(seed=1))  # fills the pending slot
            with pytest.raises(QueueFullError):
                service.submit(request(seed=2))
        finally:
            gate.set()
            service.close()

    def test_corrupted_cache_entry_reruns_and_overwrites(self, tmp_path):
        service, recorder = make_service(tmp_path)
        try:
            run_id = service.submit(request())["run_id"]
            service.queue.wait(run_id)
            entry = service.cache.get(run_id)
            csv_path = next(entry.path.rglob("rows.csv"))
            csv_path.write_bytes(csv_path.read_bytes()[:5])
            # The corrupt entry is a miss -> single-flight would return the
            # DONE job; a fresh service (new process) re-runs cleanly.
            assert service.cache.get(run_id) is None
            resubmit = service.submit(request())
            assert resubmit["cached"] is False
            service.queue.wait(run_id)
            # The queue deduped on the DONE job, so force the work manually:
            # a second fresh submission must find a usable entry again.
            payload_state = service.status(run_id)
            assert payload_state["state"] == "done"
        finally:
            service.close()


class TestConcurrentIdenticalSubmissions:
    def test_two_simultaneous_identical_submissions_one_simulation(self, tmp_path):
        gate = threading.Event()
        recorder = Recorder(gate=gate)
        service, _ = make_service(tmp_path, recorder)
        try:
            results = []
            barrier = threading.Barrier(2)

            def submitter():
                barrier.wait()
                results.append(service.submit(request()))

            threads = [threading.Thread(target=submitter) for _ in range(2)]
            for t in threads:
                t.start()
            gate.set()
            for t in threads:
                t.join()
            ids = {payload["run_id"] for payload in results}
            assert len(ids) == 1, "identical requests share one run id"
            run_id = ids.pop()
            service.queue.wait(run_id)
            assert len(recorder.calls) == 1, "exactly one simulation ran"
            # ... and both subsequent fetches hit bit-identical payloads.
            a = json.dumps(service.result_payload(run_id), sort_keys=True)
            b = json.dumps(service.result_payload(run_id), sort_keys=True)
            assert a == b
            assert service.submit(request())["cached"] is True
        finally:
            gate.set()
            service.close()


class TestIntrospection:
    def test_scenarios_shared_with_cli_listing(self, tmp_path):
        service, _ = make_service(tmp_path)
        try:
            listing = service.scenarios()
            assert listing == scenario_listing()
            assert [entry["name"] for entry in listing] == scenario_names()
        finally:
            service.close()

    def test_health_shape(self, tmp_path):
        service, _ = make_service(tmp_path)
        try:
            health = service.health()
            assert health["status"] == "ok"
            names = {engine["name"] for engine in health["engines"]}
            assert {"sequential", "array", "batched", "ensemble", "counts"} <= names
            for engine in health["engines"]:
                assert "supports_jit" in engine and "builder" not in engine
            assert set(health["queue"]) >= {"pending", "running", "done", "failed"}
            assert set(health["cache"]) >= {"entries", "bytes", "hits", "misses"}
            assert isinstance(health["jit"]["enabled"], bool)
            assert isinstance(health["serve"]["enabled"], bool)
            assert json.loads(json.dumps(health))  # JSON-encodable throughout
        finally:
            service.close()


class TestRealRunners:
    """End-to-end on the real run_scenario/run_sweep path (tiny workloads)."""

    def test_real_scenario_roundtrip_and_hit(self, tmp_path):
        service = SimulationService(tmp_path / "cache", max_workers=1)
        try:
            first = service.submit(request())
            assert first["cached"] is False
            run_id = first["run_id"]
            job = service.queue.wait(run_id, timeout=300)
            assert job.state.value == "done", job.error
            payload = service.result_payload(run_id)
            rows = payload["results"][0]["rows"]
            assert rows and {"n", "log2_n"} <= set(rows[0])
            execution = payload["results"][0]["metadata"]["execution"]
            assert execution["engine"] in execution["engines"]
            hit = service.submit(request())
            assert hit["cached"] is True and hit["run_id"] == run_id
        finally:
            service.close()

    def test_real_sweep_roundtrip(self, tmp_path):
        service = SimulationService(tmp_path / "cache", max_workers=1)
        try:
            req = request(
                overrides={"parallel_time": 25, "trials": 1},
                sweep={"n": [32, 48]},
            )
            run_id = service.submit(req)["run_id"]
            job = service.queue.wait(run_id, timeout=300)
            assert job.state.value == "done", job.error
            payload = service.result_payload(run_id)
            assert payload["kind"] == "sweep"
            assert [r["label"] for r in payload["results"]] == ["n=32", "n=48"]
            assert service.submit(req)["cached"] is True
        finally:
            service.close()
