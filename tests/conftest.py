"""Shared pytest fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.engine.protocol import InteractionContext, ProtocolEvent
from repro.engine.rng import RandomSource


@pytest.fixture
def rng() -> RandomSource:
    """Deterministic random source for tests."""
    return RandomSource.from_seed(12345)


class EventCollector:
    """Simple event sink used when driving protocols outside a simulator."""

    def __init__(self) -> None:
        self.events: list[ProtocolEvent] = []

    def __call__(self, event: ProtocolEvent) -> None:
        self.events.append(event)

    def kinds(self) -> list[str]:
        return [event.kind for event in self.events]


@pytest.fixture
def event_collector() -> EventCollector:
    return EventCollector()


@pytest.fixture
def make_ctx(rng: RandomSource):
    """Factory for InteractionContext objects bound to the test RNG."""

    def factory(sink=None, interaction: int = 0, initiator: int = 0, responder: int = 1):
        ctx = InteractionContext(rng, sink=sink)
        ctx.reset(interaction, initiator, responder)
        return ctx

    return factory
