"""The seeded scenario fuzzer: determinism, validity, registry integration.

The expensive property — cross-engine statistical conformance over many
generated cases — runs in CI's scenario-smoke job (``repro-experiments
fuzz``); here one small case keeps the full path covered, and everything
else pins the cheap invariants: same seed -> identical specs and cache
keys, every generated schedule is engine-valid, and registered fuzz cases
are first-class scenarios (CLI, listing, bench grid).
"""

from __future__ import annotations

import pytest

from repro.bench.spec import default_grid
from repro.engine.adversary import ResizeSchedule
from repro.experiments.cli import main
from repro.scenarios.fuzz import (
    FAMILIES,
    check_conformance,
    generate_cases,
    register_fuzz_scenarios,
    unregister_fuzz_scenarios,
)
from repro.scenarios.registry import has_scenario
from repro.scenarios.runner import run_scenario


class TestDeterminism:
    def test_same_seed_identical_cases_and_keys(self):
        first = generate_cases(11, 10)
        second = generate_cases(11, 10)
        assert first == second
        assert [c.cache_key() for c in first] == [c.cache_key() for c in second]
        assert [c.spec().cache_key() for c in first] == [
            c.spec().cache_key() for c in second
        ]

    def test_prefix_stable(self):
        # Case i only depends on (seed, i), never on count.
        assert generate_cases(11, 3) == generate_cases(11, 10)[:3]

    def test_different_seeds_differ(self):
        keys = {c.cache_key() for c in generate_cases(1, 5)}
        other = {c.cache_key() for c in generate_cases(2, 5)}
        assert keys.isdisjoint(other)

    def test_count_validated(self):
        with pytest.raises(ValueError):
            generate_cases(1, 0)


class TestValidity:
    def test_generated_schedules_are_engine_valid(self):
        cases = generate_cases(99, 40)
        assert {c.family for c in cases} == set(FAMILIES)
        for case in cases:
            assert case.n >= 2
            assert case.horizon >= 2
            assert case.trials >= 1
            ResizeSchedule.from_pairs(case.schedule)
            if case.family == "multi_phase":
                assert [p["name"] for p in case.phases] == [
                    "warmup",
                    "crash",
                    "recovery",
                ]


class TestRegistryIntegration:
    def test_registered_cases_are_scenarios(self):
        names = register_fuzz_scenarios(42, 2)
        try:
            assert all(has_scenario(name) for name in names)
            # Presets registered too -> visible to the benchmark grid.
            grid_names = {spec.scenario for spec in default_grid("quick")}
            assert set(names) <= grid_names
            result = run_scenario(names[0], effort="quick")
            assert result.rows
            assert result.metadata["scenario"] == names[0]
        finally:
            unregister_fuzz_scenarios(names)
        assert not any(has_scenario(name) for name in names)

    def test_multi_phase_case_records_boundaries(self):
        # Seed 42 case 1 is a multi_phase draw (pinned by determinism).
        case = generate_cases(42, 2)[1]
        assert case.family == "multi_phase"
        names = register_fuzz_scenarios(42, 2)
        try:
            result = run_scenario(case.name, effort="quick")
            phases = result.metadata["phases"][f"n_{case.n}"]
            assert [p["name"] for p in phases] == ["warmup", "crash", "recovery"]
            assert phases[-1]["stop"] == case.horizon
        finally:
            unregister_fuzz_scenarios(names)


class TestConformance:
    def test_small_case_conforms_across_engines(self):
        # Keep it cheap: one generated case, few trials.  The KS critical
        # value is wide at this sample size, so this is a smoke of the full
        # path (generate -> simulate x3 engines -> KS), not a power test;
        # CI's fuzz leg runs the real battery.
        case = generate_cases(7, 1)[0]
        report = check_conformance(case, trials=8)
        assert len(report.pairs) == 6  # 3 engine pairs x 2 statistics
        assert report.ok, [
            (p.engine_a, p.engine_b, p.statistic, p.ks, p.critical)
            for p in report.failures()
        ]


class TestCli:
    def test_fuzz_list_only(self, capsys):
        assert main(["fuzz", "--seed", "3", "--count", "2", "--list"]) == 0
        out = capsys.readouterr().out
        assert "fuzz_3_0" in out and "fuzz_3_1" in out

    def test_fuzz_rejects_unknown_engine(self):
        assert main(["fuzz", "--seed", "3", "--count", "1", "--engines", "nope"]) == 2
