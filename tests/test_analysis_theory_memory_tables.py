"""Tests for theory-bound calculators, memory summaries, and table formatting."""

from __future__ import annotations

import json

import pytest

from repro.analysis.memory import memory_reference_bits, summarize_memory
from repro.analysis.tables import format_table, series_to_rows, write_csv, write_json
from repro.analysis.theory import (
    chvp_lower_bound_value,
    chvp_upper_bound_time,
    epidemic_interaction_bound,
    initiation_bounds,
    lemma_4_5_schedule,
    phase_clock_period_interactions,
    theorem_2_1_bounds,
)
from repro.core.params import empirical_parameters


class TestTheoryBounds:
    def test_epidemic_bound_formula(self):
        assert epidemic_interaction_bound(1024, k=1) == 4 * 2 * 1024 * 10

    def test_epidemic_bound_validation(self):
        with pytest.raises(ValueError):
            epidemic_interaction_bound(1)

    def test_chvp_upper_bound_monotone_in_delta(self):
        assert chvp_upper_bound_time(100, 20) > chvp_upper_bound_time(100, 10)

    def test_chvp_upper_bound_validation(self):
        with pytest.raises(ValueError):
            chvp_upper_bound_time(100, -1)

    def test_chvp_lower_bound_formula(self):
        value = chvp_lower_bound_value(100, 1024, delta=5, k=2)
        assert value == 100 - 12 * (5 + 2 * 10)

    def test_initiation_bounds_bracket_c_log_n(self):
        low, high = initiation_bounds(c=4, k=1, n=1024)
        assert low < 4 * 10 < high

    def test_initiation_bounds_validation(self):
        with pytest.raises(ValueError):
            initiation_bounds(c=1, k=2, n=100)

    def test_lemma_4_5_schedule_is_ordered(self):
        schedule = lemma_4_5_schedule(n=1000, m=1.0, k=2)
        assert schedule["i1"] < schedule["i2"] < schedule["i3"]
        assert schedule["max_initiations"] > 0

    def test_lemma_4_5_validation(self):
        with pytest.raises(ValueError):
            lemma_4_5_schedule(n=1000, m=1.0, k=1)

    def test_theorem_2_1_bounds(self):
        bounds = theorem_2_1_bounds(1024, k=2, initial_estimate=60)
        assert bounds.convergence_reference == 70
        assert bounds.holding_reference == 1024 * 10
        assert bounds.memory_reference_bits > 0

    def test_theorem_2_1_defaults(self):
        bounds = theorem_2_1_bounds(1024)
        assert bounds.initial_estimate == 10
        with pytest.raises(ValueError):
            theorem_2_1_bounds(1024, k=1)

    def test_phase_clock_period_reference(self):
        params = empirical_parameters()
        assert phase_clock_period_interactions(1024, params) == pytest.approx(
            6 * 1024 * 10
        )


class TestMemorySummary:
    def test_reference_bits(self):
        assert memory_reference_bits(2 ** 16) == pytest.approx(4.0)
        assert memory_reference_bits(2 ** 16, largest_initial_value=256) == pytest.approx(12.0)
        with pytest.raises(ValueError):
            memory_reference_bits(1)

    def test_summarize_memory(self):
        rows = [
            {"parallel_time": 1.0, "max_bits": 30.0, "mean_bits": 20.0},
            {"parallel_time": 2.0, "max_bits": 18.0, "mean_bits": 15.0},
            {"parallel_time": 3.0, "max_bits": 16.0, "mean_bits": 14.0},
            {"parallel_time": 4.0, "max_bits": 17.0, "mean_bits": 14.0},
        ]
        summary = summarize_memory(rows, population_size=1024)
        assert summary.peak_bits == 30.0
        assert summary.steady_state_bits == 17.0  # max over the second half
        assert summary.peak_over_reference > 0

    def test_summarize_memory_validation(self):
        with pytest.raises(ValueError):
            summarize_memory([], 100)
        with pytest.raises(ValueError):
            summarize_memory([{"max_bits": 1.0}], 100, steady_state_fraction=1.0)


class TestTables:
    def test_format_table_alignment_and_floats(self):
        rows = [{"n": 10, "value": 1.23456}, {"n": 1000, "value": 7.0}]
        text = format_table(rows, title="demo")
        assert "demo" in text
        assert "1.235" in text
        assert "1000" in text

    def test_format_table_empty(self):
        assert "(empty)" in format_table([], title="demo")

    def test_format_table_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_series_to_rows(self):
        series = {"x": [1, 2, 3], "y": [4, 5, 6]}
        rows = series_to_rows(series)
        assert rows[1] == {"x": 2, "y": 5}
        assert series_to_rows({}) == []

    def test_write_csv_and_json(self, tmp_path):
        rows = [{"a": 1, "b": 2.5}, {"a": 3, "b": 4.5}]
        csv_path = write_csv(tmp_path / "out" / "rows.csv", rows)
        assert csv_path.exists()
        content = csv_path.read_text().splitlines()
        assert content[0] == "a,b"
        assert len(content) == 3

        json_path = write_json(tmp_path / "out" / "meta.json", {"hello": [1, 2]})
        assert json.loads(json_path.read_text()) == {"hello": [1, 2]}

    def test_write_csv_empty(self, tmp_path):
        path = write_csv(tmp_path / "empty.csv", [])
        assert path.read_text() == ""
