"""Tests for the leader-and-token counting baseline."""

from __future__ import annotations

import math

import pytest

from repro.engine.simulator import Simulator
from repro.protocols.token_counting import TokenCounting, TokenCountingState


class TestSetup:
    def test_new_agents_are_followers(self, rng):
        state = TokenCounting().initial_state(rng)
        assert not state.is_leader
        assert state.tokens == 0

    def test_initial_population_has_one_leader(self, rng):
        population = TokenCounting().make_initial_population(10, rng)
        leaders = population.count_where(lambda s: s.is_leader)
        assert leaders == 1
        assert population.size == 10

    def test_initial_population_minimum_size(self, rng):
        with pytest.raises(ValueError):
            TokenCounting().make_initial_population(1, rng)

    def test_invalid_round_length(self):
        with pytest.raises(ValueError):
            TokenCounting(round_length=0)


class TestTransitions:
    def test_token_balancing_splits_evenly(self, make_ctx):
        protocol = TokenCounting()
        u = TokenCountingState(tokens=5)
        v = TokenCountingState(tokens=0)
        u, v = protocol.interact(u, v, make_ctx())
        assert u.tokens + v.tokens == 5
        assert abs(u.tokens - v.tokens) <= 1

    def test_empty_flag_set_when_balancing_leaves_an_agent_empty(self, make_ctx):
        protocol = TokenCounting(round_length=64)
        late = 64  # past the balancing half of the round
        u = TokenCountingState(tokens=1, interactions_in_round=late)
        v = TokenCountingState(tokens=0, interactions_in_round=late)
        u, v = protocol.interact(u, v, make_ctx())
        # A single token cannot be split: one agent stays empty, which raises
        # the "M was too small" flag on both participants.
        assert u.saw_empty and v.saw_empty

    def test_empty_flag_not_set_during_balancing_half(self, make_ctx):
        protocol = TokenCounting(round_length=64)
        u = TokenCountingState(tokens=1, interactions_in_round=0)
        v = TokenCountingState(tokens=0, interactions_in_round=0)
        u, v = protocol.interact(u, v, make_ctx())
        # Early in the round emptiness is expected (tokens are still being
        # spread), so no shortage is signalled yet.
        assert not u.saw_empty and not v.saw_empty

    def test_empty_flag_not_set_when_everyone_gets_tokens(self, make_ctx):
        protocol = TokenCounting(round_length=64)
        u = TokenCountingState(tokens=0, interactions_in_round=64)
        v = TokenCountingState(tokens=4, interactions_in_round=64)
        u, v = protocol.interact(u, v, make_ctx())
        # Balancing gives both agents tokens, so no shortage is signalled.
        assert not u.saw_empty and not v.saw_empty

    def test_round_sync_clears_stale_flag(self, make_ctx):
        protocol = TokenCounting()
        stale = TokenCountingState(tokens=3, round_id=0, saw_empty=True)
        newer = TokenCountingState(tokens=3, round_id=2, saw_empty=False)
        u, v = protocol.interact(stale, newer, make_ctx())
        assert u.round_id == 2

    def test_final_estimate_spreads(self, make_ctx):
        protocol = TokenCounting()
        done = TokenCountingState(tokens=1, done=True, estimate=6.0)
        fresh = TokenCountingState(tokens=1)
        u, v = protocol.interact(fresh, done, make_ctx())
        assert u.done and u.estimate == 6.0

    def test_state_copy_independent(self):
        state = TokenCountingState(tokens=4)
        clone = state.copy()
        clone.tokens = 9
        assert state.tokens == 4

    def test_memory_bits_positive(self):
        protocol = TokenCounting()
        assert protocol.memory_bits(TokenCountingState(tokens=8, total_tokens=16)) > 8


class TestEndToEnd:
    def test_estimates_log_n_within_constant(self, rng):
        n = 64
        protocol = TokenCounting(round_length=3 * n)
        population = protocol.make_initial_population(n, rng)
        simulator = Simulator(protocol, population, seed=15)
        simulator.run(3_000)
        assert protocol.has_converged(simulator.population)
        estimates = {s.estimate for s in simulator.states()}
        assert len(estimates) == 1
        estimate = estimates.pop()
        assert abs(estimate - math.log2(n)) <= 3  # log n +- O(1) style guarantee

    def test_breaks_when_leader_removed(self, rng):
        """The paper's argument: remove the single leader and progress stops."""
        n = 64
        protocol = TokenCounting(round_length=6 * n)
        population = protocol.make_initial_population(n, rng)
        # Remove the leader (slot 0 initially) right at the start.
        leader_slot = next(
            i for i in range(population.size) if population.state(i).is_leader
        )
        population.remove(leader_slot)
        simulator = Simulator(protocol, population, seed=16)
        simulator.run(1_000)
        assert not protocol.has_converged(simulator.population)
        assert all(s.estimate == 0.0 for s in simulator.states())
