"""JobQueue: lifecycle states, timings, error capture, bounds, single-flight."""

from __future__ import annotations

import threading

import pytest

from repro.serve.jobs import Job, JobQueue, JobState, QueueFullError


@pytest.fixture
def queue():
    q = JobQueue(max_workers=2, max_pending=8)
    yield q
    q.shutdown(wait=False)


class TestLifecycle:
    def test_successful_job_walks_queued_running_done(self, queue):
        job = queue.submit("job-ok", lambda: 41 + 1, request={"what": "sum"})
        finished = queue.wait("job-ok")
        assert finished is job
        assert finished.state is JobState.DONE
        assert finished.value == 42
        assert finished.error is None
        assert finished.request == {"what": "sum"}
        assert finished.created <= finished.started <= finished.finished
        assert finished.seconds is not None and finished.seconds >= 0.0

    def test_failure_captures_error_and_timing(self, queue):
        def boom():
            raise ValueError("the reactor is leaking")

        queue.submit("job-bad", boom)
        job = queue.wait("job-bad")
        assert job.state is JobState.FAILED
        assert job.error == "ValueError: the reactor is leaking"
        assert job.value is None
        assert job.finished is not None and job.seconds is not None

    def test_status_is_json_encodable(self, queue):
        import json

        queue.submit("job-status", lambda: None)
        job = queue.wait("job-status")
        payload = job.status()
        assert json.loads(json.dumps(payload))["state"] == "done"
        assert payload["id"] == "job-status"

    def test_unknown_job_is_none_and_wait_raises(self, queue):
        assert queue.get("nope") is None
        with pytest.raises(KeyError):
            queue.wait("nope", timeout=0.1)

    def test_wait_times_out_on_stuck_job(self, queue):
        release = threading.Event()
        queue.submit("job-stuck", release.wait)
        with pytest.raises(TimeoutError):
            queue.wait("job-stuck", timeout=0.05)
        release.set()
        assert queue.wait("job-stuck").state is JobState.DONE


class TestSingleFlight:
    def test_same_id_attaches_to_inflight_job(self, queue):
        release = threading.Event()
        calls = []

        def work():
            calls.append(1)
            release.wait()

        first = queue.submit("job-dup", work)
        second = queue.submit("job-dup", work)
        assert second is first
        release.set()
        queue.wait("job-dup")
        assert calls == [1], "one submission, one execution"

    def test_done_id_returns_existing_job_without_rerun(self, queue):
        calls = []
        queue.submit("job-done", lambda: calls.append(1))
        queue.wait("job-done")
        again = queue.submit("job-done", lambda: calls.append(1))
        assert again.state is JobState.DONE
        assert calls == [1]

    def test_failed_id_is_resubmittable_and_reruns(self, queue):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) == 1:
                raise RuntimeError("transient")
            return "recovered"

        queue.submit("job-retry", flaky)
        assert queue.wait("job-retry").state is JobState.FAILED
        queue.submit("job-retry", flaky)
        job = queue.wait("job-retry")
        assert job.state is JobState.DONE
        assert job.value == "recovered"
        assert len(attempts) == 2


class TestBounds:
    def test_pending_bound_rejects_excess_submissions(self):
        queue = JobQueue(max_workers=1, max_pending=1)
        release = threading.Event()
        try:
            queue.submit("job-a", release.wait)  # occupies the single worker
            # Give the pool a moment to start job-a so it leaves QUEUED.
            deadline = 100
            while queue.get("job-a").state is JobState.QUEUED and deadline:
                deadline -= 1
                import time

                time.sleep(0.01)
            queue.submit("job-b", lambda: None)  # fills the pending slot
            with pytest.raises(QueueFullError):
                queue.submit("job-c", lambda: None)
            release.set()
            queue.wait("job-b")
            # With the queue drained, admission opens again.
            queue.submit("job-c", lambda: None)
            assert queue.wait("job-c").state is JobState.DONE
        finally:
            release.set()
            queue.shutdown(wait=False)

    def test_depth_counts_states(self, queue):
        release = threading.Event()
        queue.submit("job-d1", release.wait)
        queue.submit("job-d2", release.wait)
        release.set()
        queue.wait("job-d1")
        queue.wait("job-d2")
        depth = queue.depth()
        assert depth["done"] == 2
        assert depth["pending"] == 0 and depth["running"] == 0

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            JobQueue(max_workers=0)
        with pytest.raises(ValueError):
            JobQueue(max_pending=0)


def test_job_dataclass_defaults():
    job = Job(id="j")
    assert job.state is JobState.QUEUED
    assert job.started is None and job.finished is None and job.seconds is None


class TestShutdownWithBacklog:
    """Jobs stranded in the queue at shutdown must terminate, not hang.

    With ``cancel_futures=True`` the executor never runs the queued
    wrappers, so without the sweep those jobs stayed QUEUED forever and
    ``wait()`` on them spun until timeout.
    """

    def test_stranded_jobs_fail_terminally(self):
        queue = JobQueue(max_workers=1, max_pending=8)
        started = threading.Event()
        release = threading.Event()

        def blocker():
            started.set()
            release.wait()

        queue.submit("running", blocker)
        assert started.wait(5.0)
        # These never reach a worker before shutdown.
        queue.submit("stranded-1", lambda: None)
        queue.submit("stranded-2", lambda: None)

        queue.shutdown(wait=False)
        for job_id in ("stranded-1", "stranded-2"):
            job = queue.get(job_id)
            assert job.state is JobState.FAILED
            assert "shut down" in job.error
            assert job.finished is not None

        # The in-flight job is not swept: it finishes normally.
        release.set()
        assert queue.wait("running", timeout=5.0).state is JobState.DONE
