"""Property-based tests (hypothesis) for core data structures and invariants."""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.geometric import geometric_cdf, max_grv_cdf
from repro.analysis.synchronization import extract_bursts
from repro.core.dynamic_counting import DynamicSizeCounting
from repro.core.params import ProtocolParameters, empirical_parameters
from repro.core.state import CountingState, Phase, classify_phase, state_memory_bits
from repro.engine.parallel import merge_shard_results, plan_shards
from repro.engine.population import Population
from repro.engine.protocol import InteractionContext, ProtocolEvent
from repro.engine.registry import make_engine
from repro.engine.rng import RandomSource, SeedTree
from repro.protocols.chvp import CHVP
from repro.protocols.epidemic import MaxEpidemic


# --------------------------------------------------------------------------- strategies

positive_floats = st.floats(min_value=1.0, max_value=1e6, allow_nan=False, allow_infinity=False)
times = st.floats(min_value=-100.0, max_value=1e7, allow_nan=False, allow_infinity=False)


@st.composite
def counting_states(draw):
    return CountingState(
        max_value=draw(positive_floats),
        last_max=draw(positive_floats),
        time=draw(times),
        interactions=draw(st.integers(min_value=0, max_value=10_000)),
    )


@st.composite
def parameter_sets(draw):
    tau3 = draw(st.floats(min_value=0.5, max_value=50))
    tau2 = tau3 + draw(st.floats(min_value=0.5, max_value=50))
    tau1 = tau2 + draw(st.floats(min_value=0.5, max_value=50))
    return ProtocolParameters(
        tau1=tau1,
        tau2=tau2,
        tau3=tau3,
        tau_prime=draw(st.floats(min_value=1.0, max_value=500)),
        k=draw(st.integers(min_value=1, max_value=8)),
        overestimation=draw(st.floats(min_value=1.0, max_value=100.0)),
    )


# --------------------------------------------------------------------------- properties


class TestPhaseClassificationProperties:
    @given(state=counting_states(), params=parameter_sets())
    @settings(max_examples=200)
    def test_every_state_has_exactly_one_phase(self, state, params):
        phase = classify_phase(state, params)
        assert phase in (Phase.EXCHANGE, Phase.HOLD, Phase.RESET)

    @given(state=counting_states(), params=parameter_sets())
    @settings(max_examples=200)
    def test_phase_boundaries_are_consistent(self, state, params):
        """The phase matches the interval definition of Section 3 exactly."""
        phase = classify_phase(state, params)
        scale = state.effective_max
        if phase is Phase.EXCHANGE:
            assert state.time >= params.tau2 * scale
        elif phase is Phase.HOLD:
            assert params.tau3 * scale <= state.time < params.tau2 * scale
        else:
            assert state.time < params.tau3 * scale

    @given(state=counting_states(), params=parameter_sets())
    @settings(max_examples=100)
    def test_estimate_is_effective_max_over_overestimation(self, state, params):
        expected = max(state.max_value, state.last_max) / params.overestimation
        assert math.isclose(state.estimate(params), expected, rel_tol=1e-12)

    @given(state=counting_states())
    @settings(max_examples=100)
    def test_memory_bits_positive_and_logarithmic(self, state):
        bits = state_memory_bits(state)
        assert bits >= 4
        # Four variables, each needs at most log2(value) + 1 bits.
        largest = max(abs(state.max_value), abs(state.last_max), abs(state.time), state.interactions, 2)
        assert bits <= 4 * (math.log2(largest) + 2)


class TestProtocolInvariantProperties:
    @given(
        u_max=positive_floats,
        u_last=positive_floats,
        u_time=times,
        v_max=positive_floats,
        v_last=positive_floats,
        v_time=times,
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=150, deadline=None)
    def test_dynamic_counting_invariants(self, u_max, u_last, u_time, v_max, v_last, v_time, seed):
        """One interaction of Algorithm 2 from an arbitrary state pair.

        Invariants: the responder never changes, the initiator's variables
        stay in range (max >= 1, interactions >= 0), and the initiator's new
        countdown never exceeds the largest value any rule can set it to —
        its own previous time, the responder's time, or ``tau_1`` times its
        new effective maximum — minus the CHVP decrement.
        """
        protocol = DynamicSizeCounting(empirical_parameters())
        ctx = InteractionContext(RandomSource.from_seed(seed))
        ctx.reset(0, 0, 1)
        u = CountingState(max_value=u_max, last_max=u_last, time=u_time, interactions=3)
        v = CountingState(max_value=v_max, last_max=v_last, time=v_time, interactions=7)
        v_before = v.as_dict()
        u_new, v_new = protocol.interact(u, v, ctx)
        assert v_new.as_dict() == v_before
        assert u_new.max_value >= 1
        assert u_new.interactions >= 1
        params = protocol.params
        rewind_cap = params.tau1 * max(u_new.max_value, u_new.last_max)
        upper = max(u_time, v_time, rewind_cap) - 1
        assert u_new.time <= upper + 1e-6

    @given(
        values=st.lists(st.integers(min_value=0, max_value=10_000), min_size=2, max_size=30),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=100, deadline=None)
    def test_chvp_maximum_never_increases(self, values, seed):
        protocol = CHVP()
        ctx = InteractionContext(RandomSource.from_seed(seed))
        ctx.reset(0, 0, 1)
        rng = RandomSource.from_seed(seed)
        states = list(values)
        peak = max(states)
        for _ in range(50):
            i, j = rng.ordered_pair(len(states))
            states[i], states[j] = protocol.interact(states[i], states[j], ctx)
            assert max(states) <= peak
            peak = max(states)

    @given(
        values=st.lists(st.integers(min_value=0, max_value=1000), min_size=2, max_size=30),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=100, deadline=None)
    def test_epidemic_monotone_and_bounded(self, values, seed):
        """Every agent's value only grows and never exceeds the initial maximum."""
        protocol = MaxEpidemic()
        ctx = InteractionContext(RandomSource.from_seed(seed))
        rng = RandomSource.from_seed(seed)
        states = list(values)
        initial_max = max(states)
        for _ in range(50):
            i, j = rng.ordered_pair(len(states))
            before = states[i]
            states[i], states[j] = protocol.interact(states[i], states[j], ctx)
            assert states[i] >= before
            assert max(states) == initial_max


class TestEngineProperties:
    @given(
        initial=st.lists(st.integers(), min_size=2, max_size=50),
        removals=st.integers(min_value=0, max_value=20),
        additions=st.integers(min_value=0, max_value=20),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=100, deadline=None)
    def test_population_size_bookkeeping(self, initial, removals, additions, seed):
        population = Population(initial)
        rng = RandomSource.from_seed(seed)
        removals = min(removals, population.size)
        population.remove_random(removals, rng)
        for value in range(additions):
            population.add(value)
        assert population.size == len(initial) - removals + additions
        # Stable ids remain unique.
        ids = list(population.stable_ids())
        assert len(ids) == len(set(ids))

    @given(
        interactions=st.lists(st.integers(min_value=0, max_value=100_000), min_size=1, max_size=200),
        gap=st.integers(min_value=1, max_value=5_000),
    )
    @settings(max_examples=100)
    def test_burst_extraction_partitions_ticks(self, interactions, gap):
        events = [ProtocolEvent("tick", agent_id=0, interaction=i) for i in interactions]
        bursts = extract_bursts(events, gap_threshold=gap)
        assert sum(b.tick_count for b in bursts) == len(events)
        # Bursts are ordered and separated by more than the gap threshold.
        for earlier, later in zip(bursts, bursts[1:]):
            assert later.start - earlier.end > gap


class TestParallelExecutionProperties:
    @given(
        events=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=25),
                st.integers(min_value=2, max_value=120),
            ),
            min_size=0,
            max_size=6,
        ),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_any_valid_resize_schedule_keeps_population_at_least_two(
        self, events, seed
    ):
        """Whatever the adversary does — shrink, grow, duplicate event
        times, out-of-order times — the population never drops below two
        agents at any snapshot."""
        engine = make_engine(
            "array",
            DynamicSizeCounting(),
            30,
            seed=seed,
            resize_schedule=events,
        )
        result = engine.run(30)
        assert engine.size >= 2
        assert all(snapshot.population_size >= 2 for snapshot in result.snapshots)

    @given(
        trials=st.integers(min_value=1, max_value=200),
        shard_size=st.integers(min_value=1, max_value=40),
        order_seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=150)
    def test_shard_merge_is_order_invariant(self, trials, shard_size, order_seed):
        """Merging per-shard result streams yields the same trial-ordered
        list no matter which order the shards complete in."""
        shards = plan_shards(trials, shard_size=shard_size)
        per_shard = [[("trial", t) for t in shard.trial_indices()] for shard in shards]
        expected = [("trial", t) for t in range(trials)]
        permutation = RandomSource.from_seed(order_seed).shuffled(range(len(shards)))
        shuffled_shards = [shards[i] for i in permutation]
        shuffled_results = [per_shard[i] for i in permutation]
        assert merge_shard_results(shuffled_shards, shuffled_results) == expected
        # The layout itself tiles [0, trials) without gaps or overlaps.
        assert shards[0].start == 0 and shards[-1].stop == trials
        assert all(a.stop == b.start for a, b in zip(shards, shards[1:]))

    @given(seed=st.integers(min_value=0, max_value=2**63))
    @settings(max_examples=5, deadline=None)
    def test_seed_tree_children_never_collide_across_10k_spawns(self, seed):
        """10^4 sibling children of one root all seed distinct generator
        states (the pool-scale no-stream-reuse guarantee)."""
        tree = SeedTree.from_seed(seed)
        states = {
            tuple(tree.trial(t).sequence().generate_state(2).tolist())
            for t in range(10_000)
        }
        assert len(states) == 10_000

    @given(seed=st.integers(min_value=0, max_value=2**63))
    @settings(max_examples=10, deadline=None)
    def test_seed_tree_namespaced_children_distinct_from_trials(self, seed):
        """Shard-namespace streams never alias trial streams of any index."""
        tree = SeedTree.from_seed(seed)
        trial_states = {
            tuple(tree.trial(t).sequence().generate_state(2).tolist())
            for t in range(64)
        }
        shard_states = {
            tuple(
                tree.child("shard", t).sequence().generate_state(2).tolist()
            )
            for t in range(64)
        }
        assert not (trial_states & shard_states)


class TestDistributionProperties:
    @given(value=st.integers(min_value=1, max_value=60), count=st.integers(min_value=1, max_value=10_000))
    @settings(max_examples=200)
    def test_max_cdf_bounded_and_monotone_in_count(self, value, count):
        cdf = max_grv_cdf(value, count)
        assert 0.0 <= cdf <= 1.0
        assert cdf <= geometric_cdf(value)
        assert max_grv_cdf(value, count + 1) <= cdf + 1e-12
