"""Suite comparison: thresholds, noise tolerance, one-sided cases, schema.

These are the edge cases the CI perf gate's correctness rests on: a
regression verdict can fail a build, so every rule that prevents a false
one (strict threshold boundary, min-of-repeats veto, noise floor,
calibration rescaling, added/removed never gating) is pinned here.
"""

from __future__ import annotations

import json

import pytest

from repro.bench.compare import (
    DEFAULT_THRESHOLD,
    compare_files,
    compare_suites,
    parse_threshold,
)
from repro.bench.suite import SCHEMA_VERSION, BenchSuite, CaseResult, SchemaVersionError
from repro.engine.errors import ConfigurationError


def make_suite(times: dict[str, float | tuple[float, ...]], calibration=0.1):
    """Suite with one case per entry; a scalar time means identical repeats."""
    cases = []
    for case_id, seconds in times.items():
        if isinstance(seconds, (int, float)):
            seconds = (float(seconds),) * 3
        cases.append(
            CaseResult(
                case_id=case_id,
                scenario=case_id.split("[")[0].split("@")[0],
                seconds=seconds,
                work_interactions=1_000_000,
            )
        )
    return BenchSuite(cases=tuple(cases), calibration_seconds=calibration)


class TestClassification:
    def test_neutral_rerun(self):
        suite = make_suite({"fig3@quick": 1.0, "fig4@quick": 2.0})
        comparison = compare_suites(suite, suite)
        assert comparison.counts()["neutral"] == 2
        assert not comparison.has_regressions

    def test_regression_beyond_threshold(self):
        baseline = make_suite({"fig3@quick": 1.0})
        current = make_suite({"fig3@quick": 1.5})
        comparison = compare_suites(baseline, current, threshold=0.25)
        (case,) = comparison.regressions
        assert case.case_id == "fig3@quick"
        assert case.ratio == pytest.approx(1.5)

    def test_improvement_beyond_threshold(self):
        baseline = make_suite({"fig3@quick": 1.0})
        current = make_suite({"fig3@quick": 0.5})
        comparison = compare_suites(baseline, current, threshold=0.25)
        assert len(comparison.improvements) == 1
        assert not comparison.has_regressions

    def test_all_improvement_run_has_no_regressions(self):
        baseline = make_suite({f"s{i}@quick": 1.0 for i in range(5)})
        current = make_suite({f"s{i}@quick": 0.4 for i in range(5)})
        comparison = compare_suites(baseline, current)
        assert comparison.counts()["improvement"] == 5
        assert comparison.summary() == "5 improvement"
        assert not comparison.has_regressions

    def test_threshold_boundary_is_strict(self):
        # Exactly 25% slower is NOT a regression — the verdict requires
        # strictly crossing the threshold.
        baseline = make_suite({"fig3@quick": 1.0})
        comparison = compare_suites(
            baseline, make_suite({"fig3@quick": 1.25}), threshold=0.25
        )
        assert comparison.counts()["neutral"] == 1
        comparison = compare_suites(
            baseline, make_suite({"fig3@quick": 1.2500001}), threshold=0.25
        )
        assert comparison.has_regressions

    def test_min_of_repeats_vetoes_noisy_median(self):
        # Median says 2x slower, but the best repeat matches the baseline:
        # one slow sample must not fail a build.
        baseline = make_suite({"fig3@quick": (1.0, 1.0, 1.0)})
        current = make_suite({"fig3@quick": (1.0, 2.0, 2.0)})
        comparison = compare_suites(baseline, current, threshold=0.25)
        (case,) = comparison.cases
        assert case.status == "neutral"
        assert "min-of-repeats" in case.reason

    def test_noise_floor_makes_tiny_cases_neutral(self):
        baseline = make_suite({"tiny@quick": 0.001})
        current = make_suite({"tiny@quick": 0.010})  # 10x "slower"
        comparison = compare_suites(baseline, current, noise_floor_seconds=0.02)
        (case,) = comparison.cases
        assert case.status == "neutral"
        assert "noise floor" in case.reason

    def test_case_above_noise_floor_still_gates(self):
        baseline = make_suite({"big@quick": 1.0})
        current = make_suite({"big@quick": 10.0})
        comparison = compare_suites(baseline, current, noise_floor_seconds=0.02)
        assert comparison.has_regressions


class TestOneSidedCases:
    def test_case_only_in_current_is_added(self):
        baseline = make_suite({"fig3@quick": 1.0})
        current = make_suite({"fig3@quick": 1.0, "new@quick": 9.0})
        comparison = compare_suites(baseline, current)
        (added,) = comparison.by_status("added")
        assert added.case_id == "new@quick"
        assert not comparison.has_regressions  # growing the grid never gates

    def test_case_only_in_baseline_is_removed(self):
        baseline = make_suite({"fig3@quick": 1.0, "old@quick": 1.0})
        current = make_suite({"fig3@quick": 1.0})
        comparison = compare_suites(baseline, current)
        (removed,) = comparison.by_status("removed")
        assert removed.case_id == "old@quick"
        assert not comparison.has_regressions

    def test_empty_baseline_suite(self):
        baseline = BenchSuite(cases=(), calibration_seconds=0.1)
        current = make_suite({"fig3@quick": 1.0})
        comparison = compare_suites(baseline, current)
        assert comparison.counts()["added"] == 1
        assert not comparison.has_regressions

    def test_both_suites_empty(self):
        empty = BenchSuite(cases=(), calibration_seconds=0.1)
        comparison = compare_suites(empty, empty)
        assert comparison.cases == ()
        assert comparison.summary() == "no cases"
        assert not comparison.has_regressions


class TestCalibration:
    def test_slower_machine_is_rescaled_not_regressed(self):
        # The current machine's calibration ran 2x slower than the
        # baseline's: 2x-slower case times are expected, not regressions.
        baseline = make_suite({"fig3@quick": 1.0}, calibration=0.05)
        current = make_suite({"fig3@quick": 2.0}, calibration=0.10)
        comparison = compare_suites(baseline, current)
        assert comparison.calibration_scale == pytest.approx(2.0)
        (case,) = comparison.cases
        assert case.status == "neutral"
        assert case.baseline_raw_seconds == pytest.approx(1.0)
        assert case.baseline_seconds == pytest.approx(2.0)

    def test_no_calibrate_disables_rescaling(self):
        baseline = make_suite({"fig3@quick": 1.0}, calibration=0.05)
        current = make_suite({"fig3@quick": 2.0}, calibration=0.10)
        comparison = compare_suites(baseline, current, calibrate=False)
        assert comparison.calibration_scale == 1.0
        assert comparison.has_regressions

    def test_missing_calibration_assumes_equal_machines(self):
        baseline = make_suite({"fig3@quick": 1.0}, calibration=None)
        current = make_suite({"fig3@quick": 1.0}, calibration=0.10)
        comparison = compare_suites(baseline, current)
        assert comparison.calibration_scale == 1.0


class TestSchemaAndInputs:
    def test_schema_version_mismatch_raises(self, tmp_path):
        good = make_suite({"fig3@quick": 1.0})
        good_path = good.save(tmp_path / "good.json")
        data = good.to_dict()
        data["schema_version"] = SCHEMA_VERSION + 7
        bad_path = tmp_path / "bad.json"
        bad_path.write_text(json.dumps(data))
        with pytest.raises(SchemaVersionError):
            compare_files(good_path, bad_path)
        with pytest.raises(SchemaVersionError):
            compare_files(bad_path, good_path)

    def test_bad_threshold_rejected(self):
        suite = make_suite({"fig3@quick": 1.0})
        with pytest.raises(ConfigurationError):
            compare_suites(suite, suite, threshold=0.0)
        with pytest.raises(ConfigurationError):
            compare_suites(suite, suite, threshold=1.5)


class TestParseThreshold:
    @pytest.mark.parametrize(
        "text,expected",
        [("25%", 0.25), ("25", 0.25), ("0.25", 0.25), (" 10% ", 0.10), (0.5, 0.5), (30, 0.30)],
    )
    def test_accepted_forms(self, text, expected):
        assert parse_threshold(text) == pytest.approx(expected)

    @pytest.mark.parametrize("text", ["", "fast", "-5%", "0", "100%"])
    def test_rejected_forms(self, text):
        with pytest.raises(ConfigurationError):
            parse_threshold(text)

    def test_default_matches_ci_gate(self):
        assert parse_threshold("25%") == DEFAULT_THRESHOLD
