"""Tests for repro.engine.population."""

from __future__ import annotations

import pytest

from repro.engine.errors import EmptyPopulationError, UnknownAgentError
from repro.engine.population import Population


class TestConstruction:
    def test_empty(self):
        pop = Population()
        assert len(pop) == 0
        assert pop.size == 0
        assert not pop.is_interactable()

    def test_from_iterable(self):
        pop = Population(range(5))
        assert pop.size == 5
        assert list(pop) == [0, 1, 2, 3, 4]

    def test_interactable_needs_two(self):
        assert not Population([1]).is_interactable()
        assert Population([1, 2]).is_interactable()


class TestStateAccess:
    def test_state_and_set_state(self):
        pop = Population(["a", "b"])
        assert pop.state(0) == "a"
        pop.set_state(0, "z")
        assert pop[0] == "z"

    def test_out_of_range_raises(self):
        pop = Population([1, 2])
        with pytest.raises(UnknownAgentError):
            pop.state(2)
        with pytest.raises(UnknownAgentError):
            pop.set_state(-1, 0)

    def test_stable_ids_initial(self):
        pop = Population([10, 20, 30])
        assert list(pop.stable_ids()) == [0, 1, 2]

    def test_states_view_matches_iteration(self):
        pop = Population([1, 2, 3])
        assert list(pop.states()) == list(pop)


class TestAddRemove:
    def test_add_returns_fresh_stable_id(self):
        pop = Population([1, 2])
        sid = pop.add(3)
        assert sid == 2
        assert pop.size == 3
        assert pop.add(4) == 3

    def test_add_many(self):
        pop = Population()
        ids = pop.add_many([5, 6, 7])
        assert ids == [0, 1, 2]
        assert pop.size == 3

    def test_remove_returns_state(self):
        pop = Population(["a", "b", "c"])
        removed = pop.remove(0)
        assert removed == "a"
        assert pop.size == 2
        assert set(pop) == {"b", "c"}

    def test_remove_preserves_stable_id_mapping(self):
        pop = Population(["a", "b", "c"])
        pop.remove(0)  # swap-with-last: "c" moves to slot 0
        remaining = {pop.stable_id(i): pop.state(i) for i in range(pop.size)}
        assert remaining == {2: "c", 1: "b"}

    def test_stable_ids_never_reused(self):
        pop = Population(["a", "b"])
        pop.remove(1)
        new_id = pop.add("c")
        assert new_id == 2  # id 1 is not reused

    def test_remove_out_of_range(self):
        pop = Population([1, 2])
        with pytest.raises(UnknownAgentError):
            pop.remove(5)


class TestRandomRemoval:
    def test_remove_random_count(self, rng):
        pop = Population(range(50))
        removed = pop.remove_random(20, rng)
        assert len(removed) == 20
        assert pop.size == 30

    def test_remove_random_too_many(self, rng):
        pop = Population(range(5))
        with pytest.raises(EmptyPopulationError):
            pop.remove_random(6, rng)

    def test_remove_random_negative(self, rng):
        pop = Population(range(5))
        with pytest.raises(ValueError):
            pop.remove_random(-1, rng)

    def test_downsize_to(self, rng):
        pop = Population(range(100))
        pop.downsize_to(10, rng)
        assert pop.size == 10

    def test_downsize_to_noop_when_smaller(self, rng):
        pop = Population(range(5))
        assert pop.downsize_to(10, rng) == []
        assert pop.size == 5

    def test_downsize_negative_target(self, rng):
        pop = Population(range(5))
        with pytest.raises(ValueError):
            pop.downsize_to(-1, rng)

    def test_downsize_keeps_subset_of_original(self, rng):
        pop = Population(range(30))
        pop.downsize_to(7, rng)
        assert set(pop).issubset(set(range(30)))
        assert len(set(pop)) == 7


class TestAggregates:
    def test_map_states(self):
        pop = Population([1, 2, 3])
        assert pop.map_states(lambda x: x * 2) == [2, 4, 6]

    def test_count_where(self):
        pop = Population(range(10))
        assert pop.count_where(lambda x: x % 2 == 0) == 5
