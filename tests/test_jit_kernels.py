"""Compiled kernel backend: bit-parity, dispatch, availability, fallback.

The parity tests run every protocol with a jit wrapper against the plain
NumPy kernels on a shared seed and assert the *entire* engine state is
equal element for element — not statistically close: the jit kernels are
drop-in replacements, so any divergence is a bug.

Three wrapper modes are exercised:

* ``fallback`` — ``REPRO_DISABLE_JIT`` forces :func:`kernel_table` to
  ``None``, so the wrappers delegate to ``super()`` (the NumPy kernels);
* ``interpreted`` — :func:`use_kernel_table` injects the *uncompiled*
  Python loop kernels, so the kernel logic itself executes (slowly) even
  on machines without numba;
* ``compiled`` — the real ``njit`` table, when numba is importable.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dynamic_counting import DynamicSizeCounting
from repro.core.phase_clock import UniformPhaseClock
from repro.engine.errors import ConfigurationError
from repro.engine.registry import choose_engine, engine_info, make_engine
from repro.kernels import (
    availability,
    compile_warmup,
    has_jit_kernel,
    jit_kernel_for,
    jit_wrap,
    register_jit_kernel,
    registered_jit_protocols,
)
from repro.kernels.availability import DISABLE_ENV
from repro.kernels.jit import (
    JitVectorizedDynamicCounting,
    kernel_table,
    python_kernels,
    use_kernel_table,
)
from repro.protocols.epidemic import InfectionEpidemic, MaxEpidemic
from repro.protocols.junta import JuntaElection
from repro.protocols.majority import ApproximateMajority

PROTOCOLS = (
    DynamicSizeCounting,
    MaxEpidemic,
    InfectionEpidemic,
    JuntaElection,
    ApproximateMajority,
)

MODES = ["fallback", "interpreted"]
if availability().enabled:
    MODES.append("compiled")


def _engine_kwargs(engine):
    return {"trials": 3} if engine == "ensemble" else {}


def _run_pair(protocol_cls, engine, mode, monkeypatch, *, n=300, steps=40, **kw):
    """Run the NumPy reference and a jit wrapper on a shared seed."""
    kwargs = {**_engine_kwargs(engine), **kw}
    ref = make_engine(engine, protocol_cls(), n, seed=11, **kwargs)
    ref.run(steps)

    wrapper = jit_kernel_for(protocol_cls())
    if mode == "fallback":
        monkeypatch.setenv(DISABLE_ENV, "1")
        assert kernel_table() is None
        jit_engine = make_engine(engine, wrapper, n, seed=11, **kwargs)
        jit_engine.run(steps)
    elif mode == "interpreted":
        with use_kernel_table(python_kernels()):
            jit_engine = make_engine(engine, wrapper, n, seed=11, **kwargs)
            jit_engine.run(steps)
    else:  # compiled
        monkeypatch.delenv(DISABLE_ENV, raising=False)
        assert kernel_table() is not None
        jit_engine = make_engine(engine, wrapper, n, seed=11, **kwargs)
        jit_engine.run(steps)
    return ref, jit_engine


def _assert_state_equal(ref, jit_engine, context):
    assert set(ref.arrays) == set(jit_engine.arrays), context
    for key in ref.arrays:
        expected = ref.arrays[key]
        actual = jit_engine.arrays[key]
        assert expected.dtype == actual.dtype, (context, key)
        assert np.array_equal(expected, actual), (context, key)


class TestBitParity:
    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("engine", ["batched", "ensemble"])
    @pytest.mark.parametrize("protocol_cls", PROTOCOLS, ids=lambda c: c.__name__)
    def test_jit_matches_numpy_exactly(self, protocol_cls, engine, mode, monkeypatch):
        ref, jit_engine = _run_pair(protocol_cls, engine, mode, monkeypatch)
        _assert_state_equal(ref, jit_engine, (protocol_cls.__name__, engine, mode))

    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("engine", ["batched", "ensemble"])
    def test_parity_through_resize_mid_run(self, engine, mode, monkeypatch):
        # The adversary halves and then grows the population mid-run; the
        # jit kernels only see per-batch arrays, so parity must survive
        # lane-count changes and state re-initialisation.
        schedule = ((10, 150), (25, 400))
        ref, jit_engine = _run_pair(
            DynamicSizeCounting,
            engine,
            mode,
            monkeypatch,
            steps=45,
            resize_schedule=schedule,
        )
        _assert_state_equal(ref, jit_engine, ("resize", engine, mode))

    def test_ensemble_counting_exercises_float32_planes(self):
        # The ensemble counting parity above is only meaningful if the
        # compact float32 planes are what actually ran.
        engine = make_engine(
            "ensemble", jit_kernel_for(DynamicSizeCounting()), 300, seed=3, trials=2
        )
        assert engine.arrays["max"].dtype == np.float32

    @pytest.mark.parametrize("mode", MODES)
    def test_parity_on_float64_ensemble_planes(self, mode, monkeypatch):
        # Theory-scale constants disable the float32 planes; the ensemble
        # kernels must stay bit-exact on the float64 layout too.
        from repro.core.params import theory_parameters

        params = theory_parameters()

        class BigTau(DynamicSizeCounting):
            def __init__(self):
                super().__init__(params)

        probe = jit_kernel_for(BigTau())
        assert probe.ensemble_state_dtypes is None
        ref, jit_engine = _run_pair(BigTau, "ensemble", mode, monkeypatch)
        assert jit_engine.arrays["max"].dtype == np.float64
        _assert_state_equal(ref, jit_engine, ("float64-planes", mode))


class TestDispatch:
    def test_registered_protocols_cover_scalar_and_vectorized(self):
        names = registered_jit_protocols()
        for expected in (
            "DynamicSizeCounting",
            "UniformPhaseClock",
            "VectorizedDynamicCounting",
            "MaxEpidemic",
            "VectorizedMaxEpidemic",
            "InfectionEpidemic",
            "JuntaElection",
            "ApproximateMajority",
        ):
            assert expected in names

    def test_jit_kernel_for_is_idempotent(self):
        wrapper = jit_kernel_for(DynamicSizeCounting())
        assert jit_kernel_for(wrapper) is wrapper
        assert jit_wrap(wrapper) is wrapper

    def test_phase_clock_maps_to_counting_wrapper(self):
        assert isinstance(
            jit_kernel_for(UniformPhaseClock()), JitVectorizedDynamicCounting
        )

    def test_unregistered_protocol_raises(self):
        class Mystery:
            pass

        assert not has_jit_kernel(Mystery())
        with pytest.raises(ConfigurationError, match="no jit kernel registered"):
            jit_kernel_for(Mystery())

    def test_register_jit_kernel_walks_the_mro(self):
        class Marker:
            pass

        class Child(Marker):
            pass

        sentinel = jit_kernel_for(DynamicSizeCounting())
        register_jit_kernel(Marker, lambda p: sentinel)
        try:
            assert has_jit_kernel(Child())
            assert jit_kernel_for(Child()) is sentinel
        finally:
            from repro.kernels import _JIT_REGISTRY

            _JIT_REGISTRY.pop(Marker, None)

    def test_jit_wrap_returns_original_when_unavailable(self, monkeypatch):
        monkeypatch.setenv(DISABLE_ENV, "1")
        from repro.protocols.vectorized import VectorizedMaxEpidemic

        protocol = VectorizedMaxEpidemic(1, True)
        assert jit_wrap(protocol) is protocol

    def test_jit_wrap_passes_through_unregistered_protocols(self):
        class Mystery:
            pass

        protocol = Mystery()
        assert jit_wrap(protocol) is protocol


class TestAvailability:
    def test_disable_env_wins(self, monkeypatch):
        monkeypatch.setenv(DISABLE_ENV, "1")
        status = availability()
        assert not status.enabled
        assert DISABLE_ENV in status.reason
        assert kernel_table() is None

    def test_disable_env_zero_means_enabled_probe(self, monkeypatch):
        monkeypatch.setenv(DISABLE_ENV, "0")
        status = availability()
        # "0" does not disable; the outcome is whatever the import probe says.
        assert status.enabled == (status.numba_version is not None)

    def test_fallback_is_logged_once_per_reason(self, monkeypatch, caplog):
        import sys

        # The package re-exports the probe *function* under the submodule's
        # name (`repro.kernels.availability()` is the documented API), so
        # the module object must come from sys.modules.
        avail_mod = sys.modules["repro.kernels.availability"]
        monkeypatch.setenv(DISABLE_ENV, "for-this-test")
        monkeypatch.setattr(avail_mod, "_LOGGED_REASONS", set())
        with caplog.at_level("INFO", logger="repro.kernels"):
            availability()
            availability()
        messages = [
            record
            for record in caplog.records
            if "compiled kernels disabled" in record.getMessage()
        ]
        assert len(messages) == 1

    def test_engine_run_with_jit_true_falls_back(self, monkeypatch):
        # The headline satellite case: jit=True on a numba-less machine (or
        # with the kill switch set) must run and produce the NumPy results.
        monkeypatch.setenv(DISABLE_ENV, "1")
        ref = make_engine("batched", DynamicSizeCounting(), 256, seed=5)
        ref.run(20)
        via_jit = make_engine("batched", DynamicSizeCounting(), 256, seed=5, jit=True)
        via_jit.run(20)
        _assert_state_equal(ref, via_jit, "jit=True fallback")


class TestEngineWiring:
    def test_supports_jit_flags(self):
        assert engine_info("batched").supports_jit
        assert engine_info("ensemble").supports_jit
        for name in ("sequential", "array", "counts"):
            assert not engine_info(name).supports_jit

    @pytest.mark.parametrize("engine", ["sequential", "array", "counts"])
    def test_make_engine_rejects_jit_on_unsupported_engines(self, engine):
        with pytest.raises(ConfigurationError, match="jit"):
            make_engine(engine, DynamicSizeCounting(), 1000, seed=1, jit=True)

    def test_choose_engine_accepts_jit_without_changing_tiers(self):
        protocol = DynamicSizeCounting()
        for trials, n in ((1, 64), (1, 10_000), (8, 10_000), (1, 2_000_000)):
            assert choose_engine(protocol, trials, n) == choose_engine(
                protocol, trials, n, jit=True
            )

    def test_run_scenario_records_jit_metadata(self):
        from repro.scenarios.runner import run_scenario

        result = run_scenario("fig3", effort="quick", jit=True)
        assert "jit" in result.metadata
        expected = "compiled" if availability().enabled else "fallback"
        assert result.metadata["jit"].startswith(expected)

    def test_compile_warmup_smoke(self):
        seconds = compile_warmup()
        assert seconds >= 0.0
        if not availability().enabled:
            assert seconds < 1.0  # no-op path: probe only, no engine runs
