"""Statistical-conformance battery across engines and execution modes.

The engines deliberately differ in *mechanism* — exact sequential
interleaving, exact struct-of-arrays, synchronous-rounds batching, stacked
ensembles, sharded stacks — but they all simulate the same stochastic
process, so the *distributions* of the quantities the paper reports must
agree.  This module checks two of them on a small counting workload:

* **convergence time** — first parallel time at which the median estimate
  is within tolerance of ``log2 n`` (horizon sentinel if never), and
* **estimate error** — ``|median estimate - log2 n|`` at the horizon,

across sequential vs array vs batched vs ensemble engines, and across
``workers=1`` vs ``workers>1`` and the sharded vs single-stack ensemble
paths.

Every run is fully seeded, so the sample sets — and therefore the test
verdicts — are deterministic: there is no flakiness to tolerate, and the
generous significance level (``ALPHA = 1e-3``) only documents how big a
disagreement would have to be before we call the engines statistically
inconsistent.  The engines use *distinct* base seeds on purpose: with a
shared seed the exact engines are trajectory-identical and the comparison
would be vacuous; distinct seeds make this an honest two-sample test.

The KS and chi-square machinery is implemented on plain NumPy (no SciPy
dependency): two-sample Kolmogorov-Smirnov with the asymptotic critical
value ``c(alpha) * sqrt((n+m)/(n*m))``, and a chi-square homogeneity test
on pooled-quantile bins with the Wilson-Hilferty critical-value
approximation.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.dynamic_counting import DynamicSizeCounting
from repro.engine.registry import make_engine
from repro.engine.runner import run_engine_trials

# --------------------------------------------------------------- statistics


def ks_statistic(a: np.ndarray, b: np.ndarray) -> float:
    """Two-sample Kolmogorov-Smirnov statistic (max CDF distance)."""
    a = np.sort(np.asarray(a, dtype=float))
    b = np.sort(np.asarray(b, dtype=float))
    grid = np.concatenate([a, b])
    grid.sort()
    cdf_a = np.searchsorted(a, grid, side="right") / a.size
    cdf_b = np.searchsorted(b, grid, side="right") / b.size
    return float(np.max(np.abs(cdf_a - cdf_b)))


def ks_critical(n: int, m: int, alpha: float) -> float:
    """Asymptotic two-sample KS critical value at significance ``alpha``."""
    c = math.sqrt(-0.5 * math.log(alpha / 2.0))
    return c * math.sqrt((n + m) / (n * m))


#: Upper-tail standard normal quantiles used by the chi-square critical
#: value approximation, keyed by significance level.
_Z_UPPER = {0.05: 1.6449, 0.01: 2.3263, 0.001: 3.0902}


def chi_square_critical(df: int, alpha: float) -> float:
    """Wilson-Hilferty approximation of the chi-square upper quantile."""
    z = _Z_UPPER[alpha]
    return df * (1.0 - 2.0 / (9.0 * df) + z * math.sqrt(2.0 / (9.0 * df))) ** 3


def chi_square_homogeneity(
    a: np.ndarray, b: np.ndarray, bins: int = 3
) -> tuple[float, int]:
    """Chi-square homogeneity statistic of two samples on pooled bins.

    Bin edges are pooled quantiles, so expected counts stay comfortably
    above the classic >= 5 rule for the sample sizes used here.  Returns
    ``(statistic, degrees_of_freedom)``.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    pooled = np.concatenate([a, b])
    edges = np.quantile(pooled, np.linspace(0.0, 1.0, bins + 1))
    edges[0], edges[-1] = -np.inf, np.inf
    # Collapse duplicate edges (heavily tied samples) to keep bins valid.
    edges = np.unique(edges)
    observed = np.array(
        [np.histogram(sample, bins=edges)[0] for sample in (a, b)], dtype=float
    )
    row = observed.sum(axis=1, keepdims=True)
    col = observed.sum(axis=0, keepdims=True)
    expected = row * col / pooled.size
    mask = expected > 0
    statistic = float(((observed - expected)[mask] ** 2 / expected[mask]).sum())
    df = (observed.shape[0] - 1) * (mask.any(axis=0).sum() - 1)
    return statistic, max(int(df), 1)


class TestStatisticHelpers:
    def test_ks_identical_samples_is_zero(self):
        x = np.array([1.0, 2.0, 3.0])
        assert ks_statistic(x, x) == 0.0

    def test_ks_disjoint_samples_is_one(self):
        assert ks_statistic(np.zeros(10), np.ones(10)) == 1.0

    def test_ks_matches_known_value(self):
        # CDFs differ by exactly 0.5 at x in [2, 3).
        assert ks_statistic(np.array([1.0, 2.0]), np.array([1.0, 3.0])) == 0.5

    def test_ks_critical_decreases_with_sample_size(self):
        assert ks_critical(100, 100, 0.001) < ks_critical(10, 10, 0.001)

    def test_chi_square_critical_close_to_table(self):
        # Table values: chi2(2, 0.05)=5.991, chi2(4, 0.01)=13.277.
        assert chi_square_critical(2, 0.05) == pytest.approx(5.991, abs=0.15)
        assert chi_square_critical(4, 0.01) == pytest.approx(13.277, abs=0.15)

    def test_chi_square_identical_samples_is_zero(self):
        x = np.arange(30, dtype=float)
        statistic, _ = chi_square_homogeneity(x, x)
        assert statistic == 0.0


# ----------------------------------------------------------------- workload

N = 64
PARALLEL_TIME = 40
TRIALS = 30
TOLERANCE = 2.0
ALPHA = 0.001
#: Sentinel convergence time for trials that never reach the tolerance.
NEVER = float(PARALLEL_TIME + 10)

#: (sample label) -> (engine, base seed, workers).  Distinct seeds keep the
#: comparisons honest (see module docstring); the two ensemble entries
#: compare the sharded row-shard path against the single-stack pass.
SAMPLES = {
    "sequential": ("sequential", 101, None),
    "array": ("array", 202, None),
    "batched": ("batched", 303, None),
    "ensemble": ("ensemble", 404, 2),
    "ensemble-single-stack": ("ensemble", 505, None),
}


def _factory(engine_name, rng, ensemble_trials):
    """Module-level engine factory so worker processes can unpickle it."""
    return make_engine(
        engine_name,
        DynamicSizeCounting(),
        N,
        rng=rng,
        trials=ensemble_trials if engine_name == "ensemble" else None,
    )


def _convergence_times(series_list) -> np.ndarray:
    log_n = math.log2(N)
    times = []
    for series in series_list:
        time = next(
            (
                t
                for t, median in zip(series["parallel_time"], series["median"])
                if abs(median - log_n) <= TOLERANCE
            ),
            NEVER,
        )
        times.append(float(time))
    return np.array(times)


def _estimate_errors(series_list) -> np.ndarray:
    log_n = math.log2(N)
    return np.array([abs(series["median"][-1] - log_n) for series in series_list])


@pytest.fixture(scope="module")
def samples() -> dict[str, dict[str, np.ndarray]]:
    """Per-engine convergence-time and estimate-error samples (seeded)."""
    out = {}
    for label, (engine, seed, workers) in SAMPLES.items():
        series = run_engine_trials(
            _factory,
            engine=engine,
            trials=TRIALS,
            seed=seed,
            parallel_time=PARALLEL_TIME,
            workers=workers,
        )
        out[label] = {
            "convergence": _convergence_times(series),
            "error": _estimate_errors(series),
        }
    return out


_PAIRS = [
    ("sequential", "array"),
    ("sequential", "batched"),
    ("sequential", "ensemble"),
    ("array", "ensemble"),
    ("batched", "ensemble"),
    ("ensemble", "ensemble-single-stack"),
]


class TestCrossEngineConformance:
    @pytest.mark.parametrize("left,right", _PAIRS)
    def test_convergence_times_agree_ks(self, samples, left, right):
        d = ks_statistic(samples[left]["convergence"], samples[right]["convergence"])
        assert d <= ks_critical(TRIALS, TRIALS, ALPHA), (
            f"convergence-time distributions diverge: {left} vs {right}, D={d:.3f}"
        )

    @pytest.mark.parametrize("left,right", _PAIRS)
    def test_estimate_errors_agree_ks(self, samples, left, right):
        d = ks_statistic(samples[left]["error"], samples[right]["error"])
        assert d <= ks_critical(TRIALS, TRIALS, ALPHA), (
            f"estimate-error distributions diverge: {left} vs {right}, D={d:.3f}"
        )

    @pytest.mark.parametrize("left,right", _PAIRS)
    def test_estimate_errors_agree_chi_square(self, samples, left, right):
        statistic, df = chi_square_homogeneity(
            samples[left]["error"], samples[right]["error"]
        )
        assert statistic <= chi_square_critical(df, ALPHA), (
            f"binned estimate errors diverge: {left} vs {right}, "
            f"chi2={statistic:.2f} (df={df})"
        )

    def test_all_engines_actually_converge(self, samples):
        """Sanity anchor: the majority of trials converge on every engine,
        so the KS comparisons are not vacuously comparing sentinels."""
        for label, data in samples.items():
            converged = (data["convergence"] < NEVER).mean()
            assert converged >= 0.5, f"{label}: only {converged:.0%} converged"


class TestWorkerCountConformance:
    """workers=1 vs workers>1 is stronger than distributional agreement:
    the sharded layer is bit-deterministic, so the samples are *equal*."""

    @pytest.mark.parametrize("engine", ["sequential", "array", "batched", "ensemble"])
    def test_worker_counts_yield_identical_samples(self, engine):
        series_by_workers = {
            workers: run_engine_trials(
                _factory,
                engine=engine,
                trials=12,
                seed=77,
                parallel_time=15,
                workers=workers,
            )
            for workers in (1, 3)
        }
        a = _convergence_times(series_by_workers[1])
        b = _convergence_times(series_by_workers[3])
        assert a.tolist() == b.tolist()
        assert ks_statistic(a, b) == 0.0
        ea = _estimate_errors(series_by_workers[1])
        eb = _estimate_errors(series_by_workers[3])
        assert ea.tolist() == eb.tolist()
