"""Statistical-conformance battery across engines and execution modes.

The engines deliberately differ in *mechanism* — exact sequential
interleaving, exact struct-of-arrays, synchronous-rounds batching, stacked
ensembles, sharded stacks — but they all simulate the same stochastic
process, so the *distributions* of the quantities the paper reports must
agree.  This module checks two of them on a small counting workload:

* **convergence time** — first parallel time at which the median estimate
  is within tolerance of ``log2 n`` (horizon sentinel if never), and
* **estimate error** — ``|median estimate - log2 n|`` at the horizon,

across sequential vs array vs batched vs ensemble vs counts engines, and
across ``workers=1`` vs ``workers>1`` and the sharded vs single-stack
ensemble paths.  A second battery checks the counts engine against the
batched engine on every protocol that ships a counts kernel (epidemics,
junta election, approximate majority), on a population-drop workload, and
for its count-vector invariants (non-negative, sums to the population
size).

Every run is fully seeded, so the sample sets — and therefore the test
verdicts — are deterministic: there is no flakiness to tolerate, and the
generous significance level (``ALPHA = 1e-3``) only documents how big a
disagreement would have to be before we call the engines statistically
inconsistent.  The engines use *distinct* base seeds on purpose: with a
shared seed the exact engines are trajectory-identical and the comparison
would be vacuous; distinct seeds make this an honest two-sample test.

The KS and chi-square machinery is implemented on plain NumPy (no SciPy
dependency) in :mod:`repro.analysis.stats` — it is shared with the
scenario fuzzer (:mod:`repro.scenarios.fuzz`), which asserts the same
cross-engine property on generated workloads at runtime.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.stats import (
    chi_square_critical,
    chi_square_homogeneity,
    ks_critical,
    ks_statistic,
)
from repro.core.dynamic_counting import DynamicSizeCounting
from repro.core.vectorized import VectorizedDynamicCounting
from repro.engine.registry import make_engine
from repro.engine.rng import RandomSource
from repro.engine.runner import run_engine_trials
from repro.protocols.vectorized import (
    VectorizedApproximateMajority,
    VectorizedInfectionEpidemic,
    VectorizedJuntaElection,
    VectorizedMaxEpidemic,
)


class TestStatisticHelpers:
    def test_ks_identical_samples_is_zero(self):
        x = np.array([1.0, 2.0, 3.0])
        assert ks_statistic(x, x) == 0.0

    def test_ks_disjoint_samples_is_one(self):
        assert ks_statistic(np.zeros(10), np.ones(10)) == 1.0

    def test_ks_matches_known_value(self):
        # CDFs differ by exactly 0.5 at x in [2, 3).
        assert ks_statistic(np.array([1.0, 2.0]), np.array([1.0, 3.0])) == 0.5

    def test_ks_critical_decreases_with_sample_size(self):
        assert ks_critical(100, 100, 0.001) < ks_critical(10, 10, 0.001)

    def test_chi_square_critical_close_to_table(self):
        # Table values: chi2(2, 0.05)=5.991, chi2(4, 0.01)=13.277.
        assert chi_square_critical(2, 0.05) == pytest.approx(5.991, abs=0.15)
        assert chi_square_critical(4, 0.01) == pytest.approx(13.277, abs=0.15)

    def test_chi_square_identical_samples_is_zero(self):
        x = np.arange(30, dtype=float)
        statistic, _ = chi_square_homogeneity(x, x)
        assert statistic == 0.0


# ----------------------------------------------------------------- workload

N = 64
PARALLEL_TIME = 40
TRIALS = 30
TOLERANCE = 2.0
ALPHA = 0.001
#: Sentinel convergence time for trials that never reach the tolerance.
NEVER = float(PARALLEL_TIME + 10)

#: (sample label) -> (engine, base seed, workers).  Distinct seeds keep the
#: comparisons honest (see module docstring); the two ensemble entries
#: compare the sharded row-shard path against the single-stack pass.
SAMPLES = {
    "sequential": ("sequential", 101, None),
    "array": ("array", 202, None),
    "batched": ("batched", 303, None),
    "ensemble": ("ensemble", 404, 2),
    "ensemble-single-stack": ("ensemble", 505, None),
    "counts": ("counts", 606, None),
}


def _factory(engine_name, rng, ensemble_trials):
    """Module-level engine factory so worker processes can unpickle it."""
    return make_engine(
        engine_name,
        DynamicSizeCounting(),
        N,
        rng=rng,
        trials=ensemble_trials if engine_name == "ensemble" else None,
    )


def _convergence_times(series_list) -> np.ndarray:
    log_n = math.log2(N)
    times = []
    for series in series_list:
        time = next(
            (
                t
                for t, median in zip(series["parallel_time"], series["median"])
                if abs(median - log_n) <= TOLERANCE
            ),
            NEVER,
        )
        times.append(float(time))
    return np.array(times)


def _estimate_errors(series_list) -> np.ndarray:
    log_n = math.log2(N)
    return np.array([abs(series["median"][-1] - log_n) for series in series_list])


@pytest.fixture(scope="module")
def samples() -> dict[str, dict[str, np.ndarray]]:
    """Per-engine convergence-time and estimate-error samples (seeded)."""
    out = {}
    for label, (engine, seed, workers) in SAMPLES.items():
        series = run_engine_trials(
            _factory,
            engine=engine,
            trials=TRIALS,
            seed=seed,
            parallel_time=PARALLEL_TIME,
            workers=workers,
        )
        out[label] = {
            "convergence": _convergence_times(series),
            "error": _estimate_errors(series),
        }
    return out


_PAIRS = [
    ("sequential", "array"),
    ("sequential", "batched"),
    ("sequential", "ensemble"),
    ("array", "ensemble"),
    ("batched", "ensemble"),
    ("ensemble", "ensemble-single-stack"),
    ("sequential", "counts"),
    ("batched", "counts"),
    ("ensemble", "counts"),
]


class TestCrossEngineConformance:
    @pytest.mark.parametrize("left,right", _PAIRS)
    def test_convergence_times_agree_ks(self, samples, left, right):
        d = ks_statistic(samples[left]["convergence"], samples[right]["convergence"])
        assert d <= ks_critical(TRIALS, TRIALS, ALPHA), (
            f"convergence-time distributions diverge: {left} vs {right}, D={d:.3f}"
        )

    @pytest.mark.parametrize("left,right", _PAIRS)
    def test_estimate_errors_agree_ks(self, samples, left, right):
        d = ks_statistic(samples[left]["error"], samples[right]["error"])
        assert d <= ks_critical(TRIALS, TRIALS, ALPHA), (
            f"estimate-error distributions diverge: {left} vs {right}, D={d:.3f}"
        )

    @pytest.mark.parametrize("left,right", _PAIRS)
    def test_estimate_errors_agree_chi_square(self, samples, left, right):
        statistic, df = chi_square_homogeneity(
            samples[left]["error"], samples[right]["error"]
        )
        assert statistic <= chi_square_critical(df, ALPHA), (
            f"binned estimate errors diverge: {left} vs {right}, "
            f"chi2={statistic:.2f} (df={df})"
        )

    def test_all_engines_actually_converge(self, samples):
        """Sanity anchor: the majority of trials converge on every engine,
        so the KS comparisons are not vacuously comparing sentinels."""
        for label, data in samples.items():
            converged = (data["convergence"] < NEVER).mean()
            assert converged >= 0.5, f"{label}: only {converged:.0%} converged"


class TestWorkerCountConformance:
    """workers=1 vs workers>1 is stronger than distributional agreement:
    the sharded layer is bit-deterministic, so the samples are *equal*."""

    @pytest.mark.parametrize(
        "engine", ["sequential", "array", "batched", "ensemble", "counts"]
    )
    def test_worker_counts_yield_identical_samples(self, engine):
        series_by_workers = {
            workers: run_engine_trials(
                _factory,
                engine=engine,
                trials=12,
                seed=77,
                parallel_time=15,
                workers=workers,
            )
            for workers in (1, 3)
        }
        a = _convergence_times(series_by_workers[1])
        b = _convergence_times(series_by_workers[3])
        assert a.tolist() == b.tolist()
        assert ks_statistic(a, b) == 0.0
        ea = _estimate_errors(series_by_workers[1])
        eb = _estimate_errors(series_by_workers[3])
        assert ea.tolist() == eb.tolist()


# ------------------------------- counts kernels across toolbox protocols

#: Workload for the per-protocol counts-vs-batched battery: small enough to
#: run the batched engine 24 times per protocol, large enough that the
#: compared statistics have real spread.
COUNTS_N = 96
COUNTS_TRIALS = 24
COUNTS_HORIZON = 30
COUNTS_NEVER = float(COUNTS_HORIZON + 10)

#: Protocols that ship a counts kernel, with the initial configuration the
#: battery seeds them with (``None`` uses the protocol default).
COUNTS_PROTOCOLS = ("max-epidemic", "infection", "junta", "majority")


def _counts_battery_protocol(key):
    if key == "max-epidemic":
        return VectorizedMaxEpidemic(initial_value=0, one_way=True)
    if key == "infection":
        return VectorizedInfectionEpidemic(one_way=False)
    if key == "junta":
        return VectorizedJuntaElection(max_level=20)
    if key == "majority":
        return VectorizedApproximateMajority()
    raise KeyError(key)


def _counts_battery_arrays(key, n):
    if key == "max-epidemic":
        value = np.zeros(n, dtype=np.float64)
        value[0] = 5.0  # one seeded peak; the epidemic spreads it
        return {"value": value}
    if key == "infection":
        infected = np.zeros(n, dtype=np.float64)
        infected[0] = 1.0  # patient zero
        return {"infected": infected}
    if key == "junta":
        return None  # everyone starts climbing from level 0
    if key == "majority":
        # A 60/36 split: A should win, but the margin keeps the race real.
        return VectorizedApproximateMajority().arrays_from_counts(60, 36)
    raise KeyError(key)


def _counts_battery_statistic(key, series):
    """One scalar per trial, chosen so its distribution has spread."""
    pairs = zip(series["parallel_time"], series["minimum"])
    if key == "max-epidemic":  # time to full spread of the seeded peak
        return float(next((t for t, lo in pairs if lo >= 5.0), COUNTS_NEVER))
    if key == "infection":  # time until every agent is infected
        return float(next((t for t, lo in pairs if lo >= 1.0), COUNTS_NEVER))
    if key == "junta":  # time until some agent believes it is in the junta
        highs = zip(series["parallel_time"], series["maximum"])
        return float(next((t for t, hi in highs if hi >= 1.0), COUNTS_NEVER))
    if key == "majority":  # time until opinion A holds the median agent
        medians = zip(series["parallel_time"], series["median"])
        return float(next((t for t, med in medians if med >= 1.0), COUNTS_NEVER))
    raise KeyError(key)


def _counts_battery_factory(engine_name, rng, ensemble_trials, *, key):
    """Module-level factory (partial-bound) for the per-protocol battery."""
    return make_engine(
        engine_name,
        _counts_battery_protocol(key),
        COUNTS_N,
        rng=rng,
        initial_arrays=_counts_battery_arrays(key, COUNTS_N),
        trials=ensemble_trials if engine_name == "ensemble" else None,
    )


class TestCountsKernelProtocolConformance:
    """Counts engine vs batched engine on every counts-kernel protocol.

    The same honest-two-sample setup as the main battery: distinct base
    seeds per engine, fully deterministic samples, KS at ``ALPHA``.
    """

    def _samples(self, key, engine, seed):
        from functools import partial

        series = run_engine_trials(
            partial(_counts_battery_factory, key=key),
            engine=engine,
            trials=COUNTS_TRIALS,
            seed=seed,
            parallel_time=COUNTS_HORIZON,
        )
        return np.array([_counts_battery_statistic(key, s) for s in series])

    @pytest.mark.parametrize("key", COUNTS_PROTOCOLS)
    def test_counts_matches_batched(self, key):
        counts = self._samples(key, "counts", 1600)
        batched = self._samples(key, "batched", 1700)
        d = ks_statistic(counts, batched)
        assert d <= ks_critical(COUNTS_TRIALS, COUNTS_TRIALS, ALPHA), (
            f"{key}: counts vs batched diverge, D={d:.3f}"
        )

    @pytest.mark.parametrize("key", COUNTS_PROTOCOLS)
    def test_battery_statistic_is_informative(self, key):
        """Sanity anchor: the compared statistic actually fires (it is not a
        column of NEVER sentinels) on the counts engine."""
        counts = self._samples(key, "counts", 1600)
        assert (counts < COUNTS_NEVER).mean() >= 0.5


class TestCountsResizeConformance:
    """Counts engine vs batched engine on a population-drop workload.

    The adversary cuts the population from 64 to 16 at t=20; the counts
    engine realises the drop as hypergeometric subsampling of the count
    vector, the batched engine by slicing agent rows.  The post-drop
    estimate distributions must agree.
    """

    DROP_TIME = 20
    DROP_TO = 16
    HORIZON = 45

    @staticmethod
    def _factory(engine_name, rng, ensemble_trials):
        return make_engine(
            engine_name,
            VectorizedDynamicCounting(),
            N,
            rng=rng,
            resize_schedule=((TestCountsResizeConformance.DROP_TIME,
                              TestCountsResizeConformance.DROP_TO),),
            trials=ensemble_trials if engine_name == "ensemble" else None,
        )

    def _final_medians(self, engine, seed):
        series = run_engine_trials(
            self._factory,
            engine=engine,
            trials=COUNTS_TRIALS,
            seed=seed,
            parallel_time=self.HORIZON,
        )
        for s in series:  # the drop must actually have happened
            assert s["population_size"][-1] == self.DROP_TO
        return np.array([s["median"][-1] for s in series])

    def test_post_drop_estimates_agree(self):
        counts = self._final_medians("counts", 1800)
        batched = self._final_medians("batched", 1900)
        d = ks_statistic(counts, batched)
        assert d <= ks_critical(COUNTS_TRIALS, COUNTS_TRIALS, ALPHA), (
            f"post-drop estimate distributions diverge, D={d:.3f}"
        )


class TestCountsInvariants:
    """Structural invariants of the count vector, checked at every snapshot:
    counts never go negative and always sum to the current population size,
    through shrinks and regrowths alike."""

    def test_counts_nonnegative_and_conserved_under_resizes(self):
        engine = make_engine(
            "counts",
            DynamicSizeCounting(),
            200,
            rng=RandomSource.from_seed(42),
            resize_schedule=((5, 60), (12, 150)),
        )
        sizes = []

        def check(eng, snapshot):
            counts = eng.state.counts
            assert counts.min() >= 0, "negative count in the state vector"
            assert int(counts.sum()) == snapshot.population_size == eng.size
            sizes.append(snapshot.population_size)

        engine.add_snapshot_hook(check)
        engine.run(20)
        assert 60 in sizes, "shrink event never observed"
        assert sizes[-1] == 150, "grow event not in effect at the horizon"
