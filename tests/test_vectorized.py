"""Tests for the vectorised Algorithm 2 implementation."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.params import empirical_parameters, theory_parameters
from repro.core.vectorized import VectorizedDynamicCounting
from repro.engine.batch_engine import BatchedSimulator


@pytest.fixture
def protocol() -> VectorizedDynamicCounting:
    return VectorizedDynamicCounting(empirical_parameters())


class TestArrays:
    def test_initial_arrays_shape_and_values(self, protocol, rng):
        arrays = protocol.initial_arrays(10, rng)
        assert set(arrays) == {"max", "last_max", "time", "interactions", "resets"}
        assert all(len(arr) == 10 for arr in arrays.values())
        assert np.all(arrays["max"] == 1)
        assert np.all(arrays["time"] == protocol.params.tau1)
        assert np.all(arrays["resets"] == 0)

    def test_initial_arrays_with_estimate(self, protocol):
        arrays = protocol.initial_arrays_with_estimate(5, 60.0)
        assert np.all(arrays["max"] == 60)
        assert np.all(arrays["time"] == protocol.params.tau1 * 60)

    def test_initial_arrays_with_estimate_applies_overestimation(self):
        protocol = VectorizedDynamicCounting(theory_parameters(k=2))
        arrays = protocol.initial_arrays_with_estimate(5, 10.0)
        assert np.all(arrays["max"] == 10 * protocol.params.overestimation)

    def test_initial_arrays_with_estimate_rejects_nonpositive(self, protocol):
        with pytest.raises(ValueError):
            protocol.initial_arrays_with_estimate(5, 0.0)

    def test_output_array_is_effective_max(self, protocol, rng):
        arrays = protocol.initial_arrays(4, rng)
        arrays["max"][:] = [3, 9, 1, 4]
        arrays["last_max"][:] = [7, 2, 1, 4]
        assert protocol.output_array(arrays).tolist() == [7, 9, 1, 4]

    def test_tick_count_array(self, protocol, rng):
        arrays = protocol.initial_arrays(3, rng)
        arrays["resets"][:] = [0, 2, 5]
        assert protocol.tick_count_array(arrays).tolist() == [0, 2, 5]

    def test_phase_codes(self, protocol, rng):
        arrays = protocol.initial_arrays(3, rng)
        arrays["max"][:] = 10
        arrays["last_max"][:] = 10
        arrays["time"][:] = [50, 30, 5]  # exchange, hold, reset
        assert protocol.phase_codes(arrays).tolist() == [0, 1, 2]

    def test_describe(self, protocol):
        assert protocol.describe()["params"]["tau1"] == 6.0


class TestBatchTransition:
    def test_wraparound_reset_applied(self, protocol, rng):
        arrays = protocol.initial_arrays(4, rng)
        arrays["max"][:] = 10
        arrays["last_max"][:] = 10
        arrays["time"][:] = [0, 50, 50, 50]
        initiators = np.array([0])
        responders = np.array([1])
        protocol.interact_batch(arrays, initiators, responders, rng)
        assert arrays["resets"][0] == 1
        assert arrays["last_max"][0] == 10  # trailing estimate keeps the old max
        assert arrays["time"][0] >= protocol.params.tau1 * 10 - 1

    def test_exchange_adoption_applied(self, protocol, rng):
        arrays = protocol.initial_arrays(2, rng)
        arrays["max"][:] = [8, 12]
        arrays["last_max"][:] = [8, 12]
        arrays["time"][:] = [40, 60]
        protocol.interact_batch(arrays, np.array([0]), np.array([1]), rng)
        assert arrays["max"][0] == 12
        assert arrays["resets"][0] == 0

    def test_chvp_time_update(self, protocol, rng):
        arrays = protocol.initial_arrays(2, rng)
        arrays["max"][:] = 10
        arrays["last_max"][:] = 10
        arrays["time"][:] = [30, 45]
        protocol.interact_batch(arrays, np.array([0]), np.array([1]), rng)
        assert arrays["time"][0] == 44
        assert arrays["interactions"][0] == 1

    def test_responders_never_modified(self, protocol, rng):
        arrays = protocol.initial_arrays(2, rng)
        arrays["max"][:] = [8, 12]
        arrays["last_max"][:] = [8, 12]
        arrays["time"][:] = [40, 60]
        protocol.interact_batch(arrays, np.array([0]), np.array([1]), rng)
        assert arrays["max"][1] == 12
        assert arrays["time"][1] == 60

    def test_empty_batch_is_noop(self, protocol, rng):
        arrays = protocol.initial_arrays(3, rng)
        snapshot = {key: arr.copy() for key, arr in arrays.items()}
        protocol.interact_batch(arrays, np.array([], dtype=int), np.array([], dtype=int), rng)
        for key in arrays:
            assert np.array_equal(arrays[key], snapshot[key])


class TestBatchedConvergence:
    def test_converges_to_constant_factor_estimate(self):
        n = 3000
        protocol = VectorizedDynamicCounting()
        simulator = BatchedSimulator(protocol, n, seed=91)
        result = simulator.run(200)
        final = result.snapshots[-1]
        log_n = math.log2(n)
        assert 0.5 * log_n <= final.minimum
        assert final.maximum <= 3 * log_n

    def test_adapts_to_decimation(self):
        protocol = VectorizedDynamicCounting()
        simulator = BatchedSimulator(
            protocol, 5000, seed=92, resize_schedule=[(80, 100)]
        )
        result = simulator.run(1200)
        before = [s.median for s in result.snapshots if s.parallel_time < 80][-1]
        # The estimate oscillates round to round (occasionally spiking when a
        # large GRV is sampled), so judge adaptation on the median of the
        # medians over the last 40 % of the run rather than a single snapshot.
        tail = sorted(s.median for s in result.snapshots if s.parallel_time > 720)
        after = tail[len(tail) // 2]
        expected_drop = math.log2(5000 / 100)
        assert before - after >= 0.5 * expected_drop

    def test_recovers_from_initial_overestimate(self):
        protocol = VectorizedDynamicCounting()
        n = 1000
        initial_estimate = 40.0
        simulator = BatchedSimulator(
            protocol,
            n,
            seed=93,
            initial_arrays=protocol.initial_arrays_with_estimate(n, initial_estimate),
        )
        result = simulator.run(2500)
        tail = sorted(s.median for s in result.snapshots if s.parallel_time > 2000)
        steady_median = tail[len(tail) // 2]
        assert steady_median < initial_estimate
        assert steady_median <= 3 * math.log2(n)
