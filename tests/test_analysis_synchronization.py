"""Tests for burst/overlap extraction (Theorem 2.2 analysis)."""

from __future__ import annotations

import pytest

from repro.analysis.synchronization import Burst, analyze_synchrony, extract_bursts
from repro.engine.protocol import ProtocolEvent


def tick(agent: int, interaction: int) -> ProtocolEvent:
    return ProtocolEvent(kind="tick", agent_id=agent, interaction=interaction)


class TestBurst:
    def test_properties(self):
        burst = Burst(start=100, end=150, ticks_per_agent={1: 1, 2: 1, 3: 2})
        assert burst.tick_count == 4
        assert burst.agent_count == 3
        assert burst.length == 50

    def test_is_exact_with_population_size(self):
        exact = Burst(start=0, end=10, ticks_per_agent={0: 1, 1: 1, 2: 1})
        assert exact.is_exact(3)
        assert not exact.is_exact(4)
        double = Burst(start=0, end=10, ticks_per_agent={0: 2, 1: 1, 2: 1})
        assert not double.is_exact(3)

    def test_is_exact_with_agent_ids(self):
        burst = Burst(start=0, end=10, ticks_per_agent={7: 1, 9: 1})
        assert burst.is_exact({7, 9})
        assert not burst.is_exact({7, 8})


class TestExtractBursts:
    def test_splits_at_large_gaps(self):
        events = [tick(0, 0), tick(1, 5), tick(0, 100), tick(1, 104)]
        bursts = extract_bursts(events, gap_threshold=20)
        assert len(bursts) == 2
        assert bursts[0].start == 0 and bursts[0].end == 5
        assert bursts[1].start == 100 and bursts[1].end == 104

    def test_single_burst_when_gaps_small(self):
        events = [tick(i, i * 3) for i in range(10)]
        assert len(extract_bursts(events, gap_threshold=20)) == 1

    def test_unsorted_events_are_sorted(self):
        events = [tick(1, 104), tick(0, 0), tick(0, 100), tick(1, 5)]
        bursts = extract_bursts(events, gap_threshold=20)
        assert len(bursts) == 2

    def test_empty_events(self):
        assert extract_bursts([], gap_threshold=10) == []

    def test_invalid_gap_threshold(self):
        with pytest.raises(ValueError):
            extract_bursts([], gap_threshold=0)

    def test_ignores_other_event_kinds(self):
        events = [tick(0, 0), ProtocolEvent("other", 0, 3)]
        bursts = extract_bursts(events, gap_threshold=10)
        assert bursts[0].tick_count == 1


class TestAnalyzeSynchrony:
    def _periodic_events(self, n: int, bursts: int, period: int) -> list[ProtocolEvent]:
        """Synthetic trace: every agent ticks exactly once per burst."""
        events = []
        for b in range(bursts):
            base = b * period
            for agent in range(n):
                events.append(tick(agent, base + agent))
        return events

    def test_exact_fraction_for_perfect_clock(self):
        events = self._periodic_events(n=10, bursts=5, period=500)
        report = analyze_synchrony(events, 10, gap_threshold=30)
        assert report.total_bursts == 3  # interior bursts only
        assert report.exact_fraction == 1.0

    def test_period_and_overlap_measurements(self):
        events = self._periodic_events(n=10, bursts=4, period=500)
        report = analyze_synchrony(events, 10, gap_threshold=30)
        assert report.mean_period() == pytest.approx(500.0)
        assert report.mean_overlap_length() == pytest.approx(500 - 9)
        assert report.mean_burst_length() == pytest.approx(9.0)

    def test_missing_agent_breaks_exactness(self):
        events = self._periodic_events(n=10, bursts=3, period=500)
        # Drop one tick from the middle burst (agent 0 at interaction 500).
        events = [e for e in events if not (e.interaction == 500 and e.agent_id == 0)]
        report = analyze_synchrony(events, 10, gap_threshold=30, drop_partial_edges=False)
        assert report.exact_bursts == 2
        assert report.total_bursts == 3

    def test_default_gap_threshold_is_three_n(self):
        events = [tick(0, 0), tick(0, 2 * 10), tick(0, 200)]
        report = analyze_synchrony(events, 10)
        # Gap of 20 < 3n = 30 keeps the first two together; 200 starts a new burst.
        assert len(report.bursts) == 2

    def test_population_size_validation(self):
        with pytest.raises(ValueError):
            analyze_synchrony([], 1)

    def test_empty_trace(self):
        report = analyze_synchrony([], 10)
        assert report.total_bursts == 0
        assert report.exact_fraction == 0.0
        assert report.mean_period() == 0.0
        assert report.mean_burst_length() == 0.0
        assert report.mean_overlap_length() == 0.0
