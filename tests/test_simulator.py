"""Tests for the exact sequential simulator."""

from __future__ import annotations

import pytest

from repro.engine.adversary import RemoveAllButAt
from repro.engine.errors import ConfigurationError, EmptyPopulationError, ProtocolContractError
from repro.engine.population import Population
from repro.engine.protocol import Protocol
from repro.engine.recorder import (
    CallbackRecorder,
    EstimateRecorder,
    EventRecorder,
    PopulationSizeRecorder,
)
from repro.engine.simulator import Simulator
from repro.protocols.epidemic import MaxEpidemic


class Counter(Protocol[int]):
    """Both agents increment their state by one every interaction."""

    name = "counter"

    def initial_state(self, rng):
        return 0

    def interact(self, u, v, ctx):
        return u + 1, v + 1


class Broken(Protocol[int]):
    """Violates the contract by returning a single value."""

    def initial_state(self, rng):
        return 0

    def interact(self, u, v, ctx):
        return 7  # not a pair


class Emitter(Protocol[int]):
    """Emits one event per interaction."""

    def initial_state(self, rng):
        return 0

    def interact(self, u, v, ctx):
        ctx.emit("ping")
        return u, v


class TestConstruction:
    def test_population_from_int(self):
        sim = Simulator(Counter(), 10, seed=1)
        assert sim.population.size == 10
        assert all(state == 0 for state in sim.population.states())

    def test_population_object_is_used_directly(self):
        pop = Population([5, 6, 7])
        sim = Simulator(Counter(), pop, seed=1)
        assert sim.population is pop

    def test_rejects_too_small_population(self):
        with pytest.raises(ConfigurationError):
            Simulator(Counter(), 1, seed=1)

    def test_rejects_bad_population_type(self):
        with pytest.raises(ConfigurationError):
            Simulator(Counter(), "ten", seed=1)  # type: ignore[arg-type]


class TestRun:
    def test_interaction_count_per_parallel_step(self):
        sim = Simulator(Counter(), 10, seed=1)
        result = sim.run(5)
        assert result.parallel_time == 5
        assert result.interactions == 50
        assert result.final_size == 10

    def test_counter_conservation(self):
        # Each interaction adds exactly 2 to the total count across agents.
        sim = Simulator(Counter(), 8, seed=2)
        result = sim.run(3)
        assert sum(sim.population.states()) == 2 * result.interactions

    def test_run_zero_time(self):
        sim = Simulator(Counter(), 5, seed=1)
        result = sim.run(0)
        assert result.parallel_time == 0
        assert result.interactions == 0

    def test_negative_time_rejected(self):
        sim = Simulator(Counter(), 5, seed=1)
        with pytest.raises(ConfigurationError):
            sim.run(-1)

    def test_invalid_snapshot_interval(self):
        sim = Simulator(Counter(), 5, seed=1)
        with pytest.raises(ConfigurationError):
            sim.run(5, snapshot_every=0)

    def test_run_is_resumable(self):
        sim = Simulator(Counter(), 5, seed=1)
        sim.run(3)
        result = sim.run(2)
        assert result.parallel_time == 5
        assert result.interactions == 25

    def test_reproducibility_with_same_seed(self):
        outputs = []
        for _ in range(2):
            sim = Simulator(MaxEpidemic(), Population([9, 0, 0, 0, 0, 0]), seed=77)
            sim.run(10)
            outputs.append(list(sim.outputs()))
        assert outputs[0] == outputs[1]

    def test_stop_when_predicate(self):
        sim = Simulator(Counter(), 10, seed=1)
        result = sim.run(100, stop_when=lambda s: s.parallel_time >= 3)
        assert result.stopped_early
        assert result.parallel_time == 3

    def test_protocol_contract_violation_detected(self):
        sim = Simulator(Broken(), 5, seed=1)
        with pytest.raises(ProtocolContractError):
            sim.run(1)

    def test_too_small_population_cannot_step(self):
        pop = Population([1])
        sim = Simulator(Counter(), pop, seed=1)
        with pytest.raises(EmptyPopulationError):
            sim.run(1)

    def test_metadata_mentions_engine_and_protocol(self):
        result = Simulator(Counter(), 5, seed=1).run(1)
        assert result.metadata["engine"] == "sequential"
        assert result.metadata["protocol"]["name"] == "counter"


class TestRecordersAndAdversary:
    def test_snapshot_called_once_per_parallel_step(self):
        times = []
        recorder = CallbackRecorder(lambda t, pop, proto: times.append(t))
        sim = Simulator(Counter(), 5, seed=1, recorders=[recorder])
        sim.run(4)
        assert times == [1, 2, 3, 4]

    def test_snapshot_every(self):
        times = []
        recorder = CallbackRecorder(lambda t, pop, proto: times.append(t))
        sim = Simulator(Counter(), 5, seed=1, recorders=[recorder])
        sim.run(6, snapshot_every=2)
        assert times == [2, 4, 6]

    def test_adversary_applied_at_snapshots(self):
        recorder = PopulationSizeRecorder()
        sim = Simulator(
            Counter(), 50, seed=1, adversary=RemoveAllButAt(time=3, keep=10), recorders=[recorder]
        )
        sim.run(6)
        assert recorder.sizes() == [50, 50, 10, 10, 10, 10]

    def test_events_dispatched_to_recorders(self):
        recorder = EventRecorder()
        sim = Simulator(Emitter(), 4, seed=1, recorders=[recorder])
        result = sim.run(2)
        assert len(recorder.events) == result.interactions

    def test_estimate_recorder_tracks_protocol_output(self):
        recorder = EstimateRecorder()
        sim = Simulator(MaxEpidemic(), Population([7, 0, 0, 0]), seed=3, recorders=[recorder])
        sim.run(20)
        assert recorder.rows[-1].maximum == 7.0
        assert recorder.rows[-1].minimum == 7.0  # epidemic has spread

    def test_epidemic_spreads_to_everyone(self):
        sim = Simulator(MaxEpidemic(), Population([5] + [0] * 49), seed=4)
        sim.run(60)
        assert all(value == 5 for value in sim.outputs())
