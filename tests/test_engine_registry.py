"""Tests for the engine registry, engine selection, and the unified API."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dynamic_counting import DynamicSizeCounting
from repro.core.phase_clock import UniformPhaseClock
from repro.core.params import ProtocolParameters
from repro.core.vectorized import VectorizedDynamicCounting
from repro.engine.adversary import RemoveAllButAt
from repro.engine.api import RunResult
from repro.engine.array_engine import ArraySimulator
from repro.engine.batch_engine import BatchedSimulator, VectorizedProtocol
from repro.engine.errors import ConfigurationError
from repro.engine.recorder import EstimateRecorder
from repro.engine.registry import (
    ENGINE_NAMES,
    SMALL_POPULATION_THRESHOLD,
    choose_engine,
    has_vectorized,
    make_engine,
    register_vectorized,
    registered_protocols,
    vectorized_for,
)
from repro.engine.simulator import Simulator
from repro.protocols.doty_eftekhari import DotyEftekhariCounting
from repro.protocols.epidemic import InfectionEpidemic, MaxEpidemic
from repro.protocols.junta import JuntaElection
from repro.protocols.majority import ApproximateMajority
from repro.protocols.vectorized import (
    VectorizedApproximateMajority,
    VectorizedInfectionEpidemic,
    VectorizedJuntaElection,
    VectorizedMaxEpidemic,
)


class TestVectorizedLookup:
    def test_dynamic_counting_dispatch_carries_params(self):
        params = ProtocolParameters(tau1=7, tau2=5, tau3=3, tau_prime=30, grv_samples=8)
        vectorized = vectorized_for(DynamicSizeCounting(params))
        assert isinstance(vectorized, VectorizedDynamicCounting)
        assert vectorized.params is params

    def test_phase_clock_dispatches_to_counting_kernel(self):
        vectorized = vectorized_for(UniformPhaseClock())
        assert isinstance(vectorized, VectorizedDynamicCounting)

    def test_epidemic_dispatch_carries_flags(self):
        vectorized = vectorized_for(MaxEpidemic(initial_value=3, one_way=False))
        assert isinstance(vectorized, VectorizedMaxEpidemic)
        assert vectorized.initial_value == 3
        assert vectorized.one_way is False

        infection = vectorized_for(InfectionEpidemic(one_way=True))
        assert isinstance(infection, VectorizedInfectionEpidemic)
        assert infection.one_way is True

    def test_junta_and_majority_dispatch(self):
        junta = vectorized_for(JuntaElection(max_level=12))
        assert isinstance(junta, VectorizedJuntaElection)
        assert junta.max_level == 12

        majority = vectorized_for(ApproximateMajority(initial_opinion="A"))
        assert isinstance(majority, VectorizedApproximateMajority)
        assert majority.initial_opinion == "A"

    def test_vectorized_protocol_passes_through(self):
        protocol = VectorizedDynamicCounting()
        assert vectorized_for(protocol) is protocol
        assert has_vectorized(protocol)

    def test_unknown_protocol_raises_with_listing(self):
        with pytest.raises(ConfigurationError) as excinfo:
            vectorized_for(DotyEftekhariCounting())
        assert "DotyEftekhariCounting" in str(excinfo.value)
        assert "DynamicSizeCounting" in str(excinfo.value)
        assert not has_vectorized(DotyEftekhariCounting())

    def test_registered_protocols_lists_defaults(self):
        names = registered_protocols()
        for expected in (
            "DynamicSizeCounting",
            "UniformPhaseClock",
            "MaxEpidemic",
            "InfectionEpidemic",
            "JuntaElection",
            "ApproximateMajority",
        ):
            assert expected in names

    def test_custom_registration_and_subclass_lookup(self):
        class CustomCounting(DynamicSizeCounting):
            pass

        # Subclasses resolve through the MRO to the base registration...
        vectorized = vectorized_for(CustomCounting())
        assert isinstance(vectorized, VectorizedDynamicCounting)

        # ... unless a more specific registration exists.
        class CustomVectorized(VectorizedDynamicCounting):
            pass

        register_vectorized(CustomCounting, lambda p: CustomVectorized(p.params))
        try:
            assert isinstance(vectorized_for(CustomCounting()), CustomVectorized)
        finally:
            from repro.engine import registry

            registry._REGISTRY.pop(CustomCounting, None)


class TestChooseEngine:
    def test_non_vectorizable_protocol_needs_sequential(self):
        assert choose_engine(DotyEftekhariCounting(), trials=96, n=10_000) == "sequential"

    def test_small_population_prefers_exact_array_engine(self):
        assert (
            choose_engine(DynamicSizeCounting(), trials=96, n=SMALL_POPULATION_THRESHOLD)
            == "array"
        )

    def test_multi_trial_vectorizable_prefers_ensemble(self):
        assert choose_engine(DynamicSizeCounting(), trials=96, n=10_000) == "ensemble"

    def test_single_large_trial_prefers_batched(self):
        assert choose_engine(DynamicSizeCounting(), trials=1, n=10_000) == "batched"

    def test_vectorized_protocol_instance_accepted(self):
        assert choose_engine(VectorizedDynamicCounting(), trials=4, n=10_000) == "ensemble"

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            choose_engine(DynamicSizeCounting(), trials=0, n=100)
        with pytest.raises(ConfigurationError):
            choose_engine(DynamicSizeCounting(), trials=1, n=1)

    def test_chosen_engine_actually_runs(self):
        protocol = DynamicSizeCounting()
        engine = choose_engine(protocol, trials=1, n=50)
        result = make_engine(engine, protocol, 50, seed=3).run(4)
        assert result.metadata["engine"] == engine
        assert result.parallel_time == 4


class TestMakeEngine:
    def test_engine_names_build_expected_classes(self):
        protocol = DynamicSizeCounting()
        assert isinstance(make_engine("sequential", protocol, 10, seed=1), Simulator)
        assert isinstance(make_engine("array", protocol, 10, seed=1), ArraySimulator)
        assert isinstance(make_engine("batched", protocol, 10, seed=1), BatchedSimulator)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError) as excinfo:
            make_engine("warp", DynamicSizeCounting(), 10, seed=1)
        for name in ENGINE_NAMES:
            assert name in str(excinfo.value)

    @pytest.mark.parametrize("engine", ENGINE_NAMES)
    def test_every_engine_runs_and_reports_metadata(self, engine):
        simulator = make_engine(engine, DynamicSizeCounting(), 50, seed=3)
        result = simulator.run(5)
        assert isinstance(result, RunResult)
        assert result.metadata["engine"] == engine
        assert result.parallel_time == 5
        assert result.final_size == 50
        assert len(result.snapshots) == 5
        assert result.stopped_early is False
        series = result.series()
        assert set(series) == {
            "parallel_time",
            "population_size",
            "minimum",
            "median",
            "maximum",
        }
        assert series["parallel_time"] == [1.0, 2.0, 3.0, 4.0, 5.0]

    @pytest.mark.parametrize("engine", ENGINE_NAMES)
    def test_resize_schedule_on_every_engine(self, engine):
        simulator = make_engine(
            engine, DynamicSizeCounting(), 100, seed=5, resize_schedule=[(3, 20)]
        )
        result = simulator.run(6)
        assert result.final_size == 20

    def test_sequential_rejects_vectorized_protocol(self):
        with pytest.raises(ConfigurationError):
            make_engine("sequential", VectorizedDynamicCounting(), 10, seed=1)

    def test_sequential_rejects_initial_arrays(self):
        with pytest.raises(ConfigurationError):
            make_engine(
                "sequential",
                DynamicSizeCounting(),
                10,
                seed=1,
                initial_arrays={"max": np.ones(10)},
            )

    def test_sequential_rejects_adversary_plus_schedule(self):
        with pytest.raises(ConfigurationError):
            make_engine(
                "sequential",
                DynamicSizeCounting(),
                10,
                seed=1,
                adversary=RemoveAllButAt(time=1, keep=5),
                resize_schedule=[(1, 5)],
            )

    def test_array_engines_reject_adversary_and_recorders(self):
        with pytest.raises(ConfigurationError):
            make_engine(
                "batched",
                DynamicSizeCounting(),
                10,
                seed=1,
                adversary=RemoveAllButAt(time=1, keep=5),
            )
        with pytest.raises(ConfigurationError):
            make_engine(
                "array", DynamicSizeCounting(), 10, seed=1, recorders=[EstimateRecorder()]
            )

    def test_array_engines_reject_population_object(self):
        from repro.engine.population import Population

        with pytest.raises(ConfigurationError):
            make_engine("batched", DynamicSizeCounting(), Population([1, 2, 3]), seed=1)

    def test_sequential_accepts_recorders(self):
        recorder = EstimateRecorder()
        simulator = make_engine(
            "sequential", DynamicSizeCounting(), 20, seed=2, recorders=[recorder]
        )
        simulator.run(3)
        assert len(recorder.rows) == 3


class TestUnifiedEngineApi:
    @pytest.mark.parametrize("engine", ENGINE_NAMES)
    def test_snapshot_hooks_fire_on_every_engine(self, engine):
        simulator = make_engine(engine, DynamicSizeCounting(), 30, seed=4)
        seen = []
        simulator.add_snapshot_hook(lambda eng, snap: seen.append(snap.parallel_time))
        simulator.run(4)
        assert seen == [1, 2, 3, 4]

    @pytest.mark.parametrize("engine", ENGINE_NAMES)
    def test_stop_when_sets_stopped_early(self, engine):
        simulator = make_engine(engine, DynamicSizeCounting(), 30, seed=4)
        result = simulator.run(50, stop_when=lambda eng: eng.parallel_time >= 3)
        assert result.stopped_early is True
        assert result.parallel_time == 3

    @pytest.mark.parametrize("engine", ENGINE_NAMES)
    def test_two_argument_stop_condition(self, engine):
        simulator = make_engine(engine, DynamicSizeCounting(), 30, seed=4)
        result = simulator.run(
            50, stop_when=lambda eng, snapshot: snapshot.parallel_time >= 2
        )
        assert result.stopped_early is True
        assert result.parallel_time == 2

    def test_stop_condition_with_optional_second_parameter(self):
        """Predicates like ``stop(sim, threshold=8)`` keep the one-arg call.

        Before the unified API the sequential engine always called
        ``stop_when(sim)``; an optional extra parameter must not flip the
        call to the two-argument convention and bind the snapshot to it.
        """

        def stop(sim, threshold=3):
            return sim.parallel_time >= threshold

        result = Simulator(DynamicSizeCounting(), 20, seed=4).run(50, stop_when=stop)
        assert result.stopped_early is True
        assert result.parallel_time == 3

    def test_batched_stop_condition_with_defaulted_snapshot_parameter(self):
        """Batched predicates like ``stop(sim, snap=None)`` keep the two-arg call.

        The old BatchedSimulator.run always passed (engine, snapshot), so an
        ambiguous signature on an array engine must still receive the
        snapshot rather than its default.
        """
        simulator = BatchedSimulator(VectorizedDynamicCounting(), 20, seed=4)
        result = simulator.run(
            50, stop_when=lambda sim, snap=None: snap.parallel_time >= 3
        )
        assert result.stopped_early is True
        assert result.parallel_time == 3

    def test_sequential_snapshots_match_estimate_recorder(self):
        recorder = EstimateRecorder()
        simulator = Simulator(DynamicSizeCounting(), 40, seed=6, recorders=[recorder])
        result = simulator.run(10)
        assert [s.median for s in result.snapshots] == [r.median for r in recorder.rows]
        assert [s.minimum for s in result.snapshots] == [r.minimum for r in recorder.rows]

    def test_non_numeric_outputs_yield_nan_statistics(self):
        simulator = Simulator(ApproximateMajority(initial_opinion="A"), 10, seed=1)
        result = simulator.run(2)
        assert len(result.snapshots) == 2
        assert all(np.isnan(s.median) for s in result.snapshots)
        assert all(s.population_size == 10 for s in result.snapshots)

    def test_interact_one_is_optional(self):
        class BatchOnly(VectorizedProtocol):
            name = "batch-only"

            def initial_arrays(self, n, rng):
                return {"x": np.zeros(n)}

            def interact_batch(self, arrays, initiators, responders, rng):
                return None

            def output_array(self, arrays):
                return arrays["x"]

        simulator = ArraySimulator(BatchOnly(), 10, seed=1)
        with pytest.raises(NotImplementedError) as excinfo:
            simulator.run(1)
        assert "interact_one" in str(excinfo.value)


class TestEngineTable:
    """The engine-registry table behind make_engine/choose_engine."""

    def test_engine_names_accessor_matches_table(self):
        from repro.engine.registry import engine_names

        assert engine_names() == ENGINE_NAMES
        assert engine_names() == (
            "sequential",
            "array",
            "batched",
            "ensemble",
            "counts",
        )

    def test_engine_info_exposes_capability_flags(self):
        from repro.engine.registry import engine_info

        counts = engine_info("counts")
        assert counts.name == "counts"
        assert counts.exact is False
        assert counts.supports_trials is False
        assert counts.supports_initial_arrays is True
        sequential = engine_info("sequential")
        assert sequential.exact is True
        assert sequential.supports_recorders is True

    def test_engine_info_unknown_name_lists_registered(self):
        from repro.engine.registry import engine_info

        with pytest.raises(ConfigurationError) as excinfo:
            engine_info("warp")
        for name in ENGINE_NAMES:
            assert name in str(excinfo.value)

    def test_register_engine_extends_make_engine_and_listing(self):
        from repro.engine import registry
        from repro.engine.registry import EngineInfo, engine_names, register_engine

        built = {}

        def build(protocol, population, **kwargs):
            built["population"] = population
            return make_engine("batched", protocol, population, seed=1)

        register_engine(
            EngineInfo(
                name="custom-test-engine",
                builder=build,
                description="registration test double",
                exact=False,
            )
        )
        try:
            assert "custom-test-engine" in engine_names()
            assert "custom-test-engine" in registry.ENGINE_NAMES
            engine = make_engine(
                "custom-test-engine", DynamicSizeCounting(), 40, seed=1
            )
            assert built["population"] == 40
            assert isinstance(engine, BatchedSimulator)
            # The unknown-engine message picks up the registration too.
            with pytest.raises(ConfigurationError) as excinfo:
                make_engine("warp", DynamicSizeCounting(), 10, seed=1)
            assert "custom-test-engine" in str(excinfo.value)
        finally:
            registry._ENGINE_TABLE.pop("custom-test-engine", None)
            registry.ENGINE_NAMES = tuple(registry._ENGINE_TABLE)


class TestCountsKernelLookup:
    def test_dynamic_counting_dispatch_carries_params(self):
        from repro.core.counts import DynamicCountingCountsKernel
        from repro.engine.registry import counts_kernel_for

        params = ProtocolParameters(tau1=7, tau2=5, tau3=3, tau_prime=30, grv_samples=8)
        kernel = counts_kernel_for(DynamicSizeCounting(params))
        assert isinstance(kernel, DynamicCountingCountsKernel)
        assert kernel.params is params

    def test_phase_clock_and_vectorized_dispatch_to_counting_kernel(self):
        from repro.core.counts import DynamicCountingCountsKernel
        from repro.engine.registry import counts_kernel_for

        assert isinstance(
            counts_kernel_for(UniformPhaseClock()), DynamicCountingCountsKernel
        )
        assert isinstance(
            counts_kernel_for(VectorizedDynamicCounting()), DynamicCountingCountsKernel
        )

    def test_toolbox_dispatch_carries_flags(self):
        from repro.protocols.counts import (
            ApproximateMajorityCountsKernel,
            InfectionEpidemicCountsKernel,
            JuntaElectionCountsKernel,
            MaxEpidemicCountsKernel,
        )
        from repro.engine.registry import counts_kernel_for

        epidemic = counts_kernel_for(MaxEpidemic(initial_value=3, one_way=False))
        assert isinstance(epidemic, MaxEpidemicCountsKernel)
        assert epidemic.initial_value == 3
        assert epidemic.two_way is True

        infection = counts_kernel_for(InfectionEpidemic(one_way=True))
        assert isinstance(infection, InfectionEpidemicCountsKernel)
        assert infection.two_way is False

        junta = counts_kernel_for(JuntaElection(max_level=12))
        assert isinstance(junta, JuntaElectionCountsKernel)
        assert junta.max_level == 12

        majority = counts_kernel_for(ApproximateMajority(initial_opinion="A"))
        assert isinstance(majority, ApproximateMajorityCountsKernel)
        assert majority.initial_opinion == "A"

    def test_kernel_instance_passes_through(self):
        from repro.protocols.counts import InfectionEpidemicCountsKernel
        from repro.engine.registry import counts_kernel_for, has_counts_kernel

        kernel = InfectionEpidemicCountsKernel()
        assert counts_kernel_for(kernel) is kernel
        assert has_counts_kernel(kernel)

    def test_unknown_protocol_raises_with_listing(self):
        from repro.engine.registry import counts_kernel_for, has_counts_kernel

        with pytest.raises(ConfigurationError) as excinfo:
            counts_kernel_for(DotyEftekhariCounting())
        assert "DotyEftekhariCounting" in str(excinfo.value)
        assert "DynamicSizeCounting" in str(excinfo.value)
        assert not has_counts_kernel(DotyEftekhariCounting())

    def test_unpackable_parameters_disable_the_counts_tier(self):
        """The theory preset's huge constants overflow the packed int64 key
        space; the lookup raises and has_counts_kernel turns False, steering
        auto-selection away from the counts engine."""
        from repro.core.params import theory_parameters
        from repro.engine.registry import counts_kernel_for, has_counts_kernel

        protocol = DynamicSizeCounting(theory_parameters())
        with pytest.raises(ConfigurationError, match="pack"):
            counts_kernel_for(protocol)
        assert not has_counts_kernel(protocol)
        assert choose_engine(protocol, trials=1, n=5_000_000) == "batched"
        assert choose_engine(protocol, trials=8, n=5_000_000) == "ensemble"


class TestChooseEngineCountsTier:
    def test_large_population_prefers_counts(self):
        from repro.engine.registry import LARGE_POPULATION_THRESHOLD

        protocol = DynamicSizeCounting()
        assert (
            choose_engine(protocol, trials=1, n=LARGE_POPULATION_THRESHOLD) == "counts"
        )
        # The counts tier outranks the ensemble tier: at this scale looping
        # counts instances beats any per-agent stacking.
        assert (
            choose_engine(protocol, trials=96, n=LARGE_POPULATION_THRESHOLD) == "counts"
        )

    def test_below_threshold_keeps_historical_tiers(self):
        from repro.engine.registry import LARGE_POPULATION_THRESHOLD

        protocol = DynamicSizeCounting()
        below = LARGE_POPULATION_THRESHOLD - 1
        assert choose_engine(protocol, trials=1, n=below) == "batched"
        assert choose_engine(protocol, trials=8, n=below) == "ensemble"

    def test_counts_tier_for_toolbox_protocols(self):
        assert choose_engine(MaxEpidemic(), trials=4, n=2_000_000) == "counts"
        assert choose_engine(JuntaElection(), trials=1, n=2_000_000) == "counts"

    def test_sharded_choice_matches_serial_choice(self):
        """Per-shard decision equivalence: the engine chosen for a sharded
        run (workers set) equals the serial per-point choice on every tier,
        counts included — its trigger depends only on the protocol and n,
        which every shard of a point shares."""
        protocol = DynamicSizeCounting()
        grid = [(1, 50), (1, 10_000), (8, 10_000), (1, 2_000_000), (8, 2_000_000)]
        for trials, n in grid:
            serial = choose_engine(protocol, trials=trials, n=n)
            for workers in (1, 2, 4):
                assert choose_engine(protocol, trials=trials, n=n, workers=workers) == serial
