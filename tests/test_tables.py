"""Ragged-row regressions for :mod:`repro.analysis.tables`.

Recorder rows can be ragged — :class:`repro.engine.recorder.
PhaseOccupancyRecorder` only adds a phase column once that phase is
occupied — and both the CSV encoder and the row/series transposers must
take the union of keys across *all* rows, not just the first one.  Keying
on ``rows[0]`` silently dropped every late-appearing column, which
desynchronized saved artifacts from the in-memory result.
"""

from __future__ import annotations

import math

from repro.analysis.tables import csv_text, read_csv, rows_to_series, write_csv
from repro.experiments.base import ExperimentResult

RAGGED = [
    {"parallel_time": 0.0, "population_size": 4.0, "phase_A": 4},
    {"parallel_time": 1.0, "population_size": 4.0, "phase_A": 2, "phase_B": 2},
    {"parallel_time": 2.0, "population_size": 4.0, "phase_B": 4},
]


class TestRaggedRows:
    def test_csv_text_keeps_late_columns(self):
        header = csv_text(RAGGED).splitlines()[0]
        assert header == "parallel_time,population_size,phase_A,phase_B"

    def test_rows_to_series_unions_keys_and_fills(self):
        series = rows_to_series(RAGGED)
        assert set(series) == {"parallel_time", "population_size", "phase_A", "phase_B"}
        # Every column has one entry per row; absent cells are NaN-filled.
        assert all(len(column) == len(RAGGED) for column in series.values())
        assert series["phase_B"][1:] == [2, 4]
        assert math.isnan(series["phase_B"][0])
        assert math.isnan(series["phase_A"][2])

    def test_rows_to_series_custom_fill(self):
        series = rows_to_series(RAGGED, fill=0)
        assert series["phase_B"] == [0, 2, 4]

    def test_csv_round_trip_preserves_all_columns(self, tmp_path):
        path = write_csv(tmp_path / "ragged.csv", RAGGED)
        loaded = read_csv(path)
        assert [set(row) for row in loaded] == [set(RAGGED[0]) | {"phase_B"}] * 3
        assert loaded[2]["phase_B"] == 4
        assert loaded[0]["phase_B"] == ""  # absent cell, not a dropped column

    def test_experiment_result_save_load_keeps_ragged_series(self, tmp_path):
        result = ExperimentResult(
            experiment="ragged-demo",
            description="late-appearing phase columns",
            rows=[{"n": 4, "converged": True}],
            series={"occupancy": rows_to_series(RAGGED)},
        )
        loaded = ExperimentResult.load(result.save(tmp_path))
        assert set(loaded.series["occupancy"]) == set(result.series["occupancy"])
        occupancy = loaded.series["occupancy"]
        assert occupancy["phase_B"][1:] == [2, 4]
        assert math.isnan(occupancy["phase_B"][0])
        assert loaded.rows == result.rows
