"""HTTP layer over the serving core — needs the ``[serve]`` extra.

These tests are skipped in the plain test matrix (fastapi is not installed
there; the matrix asserts that) and run in the dedicated ``serve`` CI job.
Runners are faked so the suite exercises the transport, not the simulator;
one end-to-end test at the bottom drives a real quick scenario through the
full HTTP round-trip.
"""

from __future__ import annotations

import threading

import pytest

fastapi = pytest.importorskip("fastapi")

from fastapi.testclient import TestClient  # noqa: E402

from repro.experiments.base import ExperimentResult  # noqa: E402
from repro.serve import availability, create_app  # noqa: E402
from repro.serve.service import SimulationService  # noqa: E402

QUICK = {"n": 64, "trials": 2, "parallel_time": 30}


def fake_result(tag: str = "http") -> ExperimentResult:
    return ExperimentResult(
        experiment="fig2",
        description=f"fake {tag}",
        rows=[{"n": 64, "estimate": 6.0}],
        metadata={"preset": "quick"},
    )


class Recorder:
    def __init__(self, *, gate: threading.Event | None = None):
        self.calls = 0
        self.gate = gate

    def run_scenario(self, spec, *, preset, engine=None, workers=None, jit=False):
        self.calls += 1
        if self.gate is not None:
            self.gate.wait(timeout=30)
        return fake_result(f"call{self.calls}")

    def run_sweep(self, sweep, *, preset, engine=None, workers=None, jit=False):
        self.calls += 1
        return [(label, fake_result(label)) for label, _ in sweep.expand(preset)]


@pytest.fixture
def stack(tmp_path):
    recorder = Recorder()
    service = SimulationService(
        tmp_path / "cache",
        scenario_runner=recorder.run_scenario,
        sweep_runner=recorder.run_sweep,
    )
    with TestClient(create_app(service)) as client:
        yield client, service, recorder
    service.close()


def submit(client, **extra):
    body = {"scenario": "fig2", "effort": "quick", "overrides": QUICK}
    body.update(extra)
    return client.post("/runs", json=body)


class TestSubmitAndPoll:
    def test_miss_enqueues_202_then_hit_answers_200(self, stack):
        client, service, recorder = stack
        first = submit(client)
        assert first.status_code == 202
        payload = first.json()
        assert payload["cached"] is False
        run_id = payload["run_id"]
        service.queue.wait(run_id)
        status = client.get(f"/runs/{run_id}")
        assert status.status_code == 200
        assert status.json()["state"] == "done"
        second = submit(client)
        assert second.status_code == 200
        assert second.json()["cached"] is True
        assert second.json()["run_id"] == run_id
        assert recorder.calls == 1, "the repeat must be served from cache"

    def test_repeat_result_bodies_are_byte_identical(self, stack):
        client, service, _ = stack
        run_id = submit(client).json()["run_id"]
        service.queue.wait(run_id)
        a = client.get(f"/runs/{run_id}/result")
        b = client.get(f"/runs/{run_id}/result")
        assert a.status_code == b.status_code == 200
        assert a.content == b.content
        assert a.json()["results"][0]["rows"] == [{"n": 64, "estimate": 6.0}]

    def test_csv_format(self, stack):
        client, service, _ = stack
        run_id = submit(client).json()["run_id"]
        service.queue.wait(run_id)
        response = client.get(f"/runs/{run_id}/result", params={"format": "csv"})
        assert response.status_code == 200
        assert response.headers["content-type"].startswith("text/csv")
        header, row = response.text.splitlines()[:2]
        assert header == "n,estimate"
        assert row == "64,6.0"


class TestErrorMapping:
    def test_unknown_run_is_404(self, stack):
        client, _, _ = stack
        assert client.get("/runs/" + "0" * 64).status_code == 404
        assert client.get("/runs/" + "0" * 64 + "/result").status_code == 404

    def test_bad_request_is_422_before_any_work(self, stack):
        client, _, recorder = stack
        assert submit(client, scenario="nope").status_code == 422
        assert submit(client, effort="heroic").status_code == 422
        assert submit(client, engine="warp").status_code == 422
        assert submit(client, workers=0).status_code == 422
        assert recorder.calls == 0

    def test_pending_result_is_409(self, tmp_path):
        gate = threading.Event()
        recorder = Recorder(gate=gate)
        service = SimulationService(
            tmp_path / "cache",
            scenario_runner=recorder.run_scenario,
            sweep_runner=recorder.run_sweep,
        )
        try:
            with TestClient(create_app(service)) as client:
                run_id = submit(client).json()["run_id"]
                assert client.get(f"/runs/{run_id}/result").status_code == 409
                gate.set()
                service.queue.wait(run_id)
                assert client.get(f"/runs/{run_id}/result").status_code == 200
        finally:
            gate.set()
            service.close()

    def test_failed_job_is_500(self, tmp_path):
        def explode(spec, *, preset, engine=None, workers=None, jit=False):
            raise RuntimeError("doom")

        service = SimulationService(tmp_path / "cache", scenario_runner=explode)
        try:
            with TestClient(create_app(service)) as client:
                run_id = submit(client).json()["run_id"]
                service.queue.wait(run_id)
                assert client.get(f"/runs/{run_id}").json()["state"] == "failed"
                response = client.get(f"/runs/{run_id}/result")
                assert response.status_code == 500
                assert "doom" in response.json()["detail"]
        finally:
            service.close()

    def test_full_queue_is_429(self, tmp_path):
        gate = threading.Event()
        recorder = Recorder(gate=gate)
        service = SimulationService(
            tmp_path / "cache",
            scenario_runner=recorder.run_scenario,
            sweep_runner=recorder.run_sweep,
            max_workers=1,
            max_pending=1,
        )
        try:
            with TestClient(create_app(service)) as client:
                submit(client)
                import time

                deadline = time.monotonic() + 5
                while service.queue.depth()["running"] == 0:
                    assert time.monotonic() < deadline
                    time.sleep(0.01)
                submit(client, seed=1)
                assert submit(client, seed=2).status_code == 429
        finally:
            gate.set()
            service.close()


class TestIntrospection:
    def test_scenarios_matches_cli_listing(self, stack):
        client, _, _ = stack
        from repro.scenarios.listing import scenario_listing

        assert client.get("/scenarios").json() == scenario_listing()

    def test_healthz(self, stack):
        client, _, _ = stack
        health = client.get("/healthz").json()
        assert health["status"] == "ok"
        assert health["serve"]["enabled"] is True
        assert {"pending", "running"} <= set(health["queue"])
        assert {"entries", "hits"} <= set(health["cache"])


class TestAvailabilityGate:
    def test_probe_reports_enabled_here(self):
        status = availability()
        assert status.enabled is True
        assert status.fastapi_version


class TestEndToEnd:
    """One real simulation through the full HTTP path."""

    def test_real_quick_run_and_cache_hit(self, tmp_path):
        service = SimulationService(tmp_path / "cache", max_workers=1)
        try:
            with TestClient(create_app(service)) as client:
                first = submit(client)
                assert first.status_code == 202
                run_id = first.json()["run_id"]
                job = service.queue.wait(run_id, timeout=300)
                assert job.state.value == "done", job.error
                result = client.get(f"/runs/{run_id}/result").json()
                rows = result["results"][0]["rows"]
                assert rows and "log2_n" in rows[0]
                repeat = submit(client)
                assert repeat.status_code == 200
                assert repeat.json()["cached"] is True
        finally:
            service.close()
