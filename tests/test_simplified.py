"""Tests for Algorithm 1 (SimplifiedDynamicSizeCounting)."""

from __future__ import annotations

import math

import pytest

from repro.core.params import empirical_parameters
from repro.core.simplified import SimplifiedDynamicSizeCounting
from repro.core.state import CountingState, Phase
from repro.engine.recorder import EstimateRecorder, EventRecorder
from repro.engine.simulator import Simulator


@pytest.fixture
def protocol() -> SimplifiedDynamicSizeCounting:
    return SimplifiedDynamicSizeCounting(empirical_parameters())


class TestRules:
    def test_initial_state_mirrors_last_max(self, protocol, rng):
        state = protocol.initial_state(rng)
        assert state.max_value == state.last_max == 1

    def test_make_initial_population_validates_size(self, protocol, rng):
        assert protocol.make_initial_population(5, rng).size == 5
        with pytest.raises(ValueError):
            protocol.make_initial_population(1, rng)

    def test_wraparound_reset_emits_event(self, protocol, make_ctx, event_collector):
        u = CountingState(max_value=10, last_max=10, time=0)
        v = CountingState(max_value=10, last_max=10, time=20)
        protocol.interact(u, v, make_ctx(sink=event_collector))
        assert event_collector.kinds() == ["reset"]

    def test_exchange_adopts_larger_maximum(self, protocol, make_ctx):
        u = CountingState(max_value=8, last_max=8, time=50)
        v = CountingState(max_value=12, last_max=12, time=60)
        u, v = protocol.interact(u, v, make_ctx())
        assert u.max_value == 12
        assert u.last_max == 12  # Algorithm 1 keeps a single estimate

    def test_hold_phase_mismatch_triggers_reset(self, protocol, make_ctx, event_collector):
        u = CountingState(max_value=10, last_max=10, time=30)  # hold
        v = CountingState(max_value=11, last_max=11, time=30)
        protocol.interact(u, v, make_ctx(sink=event_collector))
        assert "reset" in event_collector.kinds()

    def test_chvp_update_applies(self, protocol, make_ctx):
        u = CountingState(max_value=10, last_max=10, time=30)
        v = CountingState(max_value=10, last_max=10, time=45)
        u, _ = protocol.interact(u, v, make_ctx())
        assert u.time == 44

    def test_output_and_phase(self, protocol):
        state = CountingState(max_value=9, last_max=9, time=40)
        assert protocol.output(state) == 9.0
        assert protocol.phase_of(state) is Phase.EXCHANGE

    def test_memory_bits(self, protocol):
        assert protocol.memory_bits(CountingState(max_value=10, last_max=10, time=60)) >= 4

    def test_describe(self, protocol):
        assert protocol.describe()["params"]["tau1"] == 6.0


class TestEndToEnd:
    def test_estimates_are_constant_factor_of_log_n(self):
        n = 200
        protocol = SimplifiedDynamicSizeCounting()
        recorder = EstimateRecorder()
        simulator = Simulator(protocol, n, seed=61, recorders=[recorder])
        simulator.run(300)
        log_n = math.log2(n)
        # Algorithm 1 samples a single GRV per reset, so its estimate tracks
        # the max of ~n GRVs (roughly log2 n) but fluctuates more than
        # Algorithm 2's; accept a generous constant-factor band over the
        # steady-state window.
        steady = [row for row in recorder.rows if row.parallel_time > 150]
        medians = [row.median for row in steady]
        assert max(medians) <= 4 * log_n
        assert sum(m >= 0.5 * log_n for m in medians) / len(medians) > 0.8

    def test_clock_keeps_ticking(self):
        protocol = SimplifiedDynamicSizeCounting()
        events = EventRecorder(kinds={"reset"})
        simulator = Simulator(protocol, 100, seed=62, recorders=[events])
        simulator.run(300)
        assert len(events.events) > 100
