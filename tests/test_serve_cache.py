"""ResultCache: round-trips, atomicity, LRU eviction, corruption tolerance."""

from __future__ import annotations

import json
import os
import threading

import pytest

from repro.experiments.base import ExperimentResult
from repro.serve.cache import ResultCache


def hex_key(tag: str) -> str:
    """A syntactically valid 64-hex cache key derived from a short tag."""
    import hashlib

    return hashlib.sha256(tag.encode()).hexdigest()


def tiny_result(tag: str = "one", *, pad: int = 0) -> ExperimentResult:
    rows = [{"n": 80, "value": 2.5, "tag": tag}]
    if pad:
        rows += [{"n": i, "value": float(i), "tag": "x" * 50} for i in range(pad)]
    return ExperimentResult(
        experiment=f"exp_{tag}",
        description=f"tiny result {tag}",
        rows=rows,
        series={"main": {"t": [0.0, 1.0], "v": [1.0, 2.0]}},
        metadata={"preset": "tiny", "engine": "array"},
    )


class TestRoundTrip:
    def test_put_get_round_trips_results(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = hex_key("roundtrip")
        cache.put(key, [(None, tiny_result())])
        entry = cache.get(key)
        assert entry is not None
        assert entry.key == key
        assert entry.kind == "scenario"
        assert entry.labels == (None,)
        (label, loaded), = entry.results
        original = tiny_result()
        assert label is None
        assert loaded.experiment == original.experiment
        assert loaded.rows == original.rows
        assert loaded.series == original.series
        assert loaded.metadata == original.metadata

    def test_sweep_entries_preserve_label_order(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = hex_key("sweep")
        results = [(f"n={i}", tiny_result(f"s{i}")) for i in (32, 64, 128)]
        cache.put(key, results, kind="sweep")
        entry = cache.get(key)
        assert entry.kind == "sweep"
        assert entry.labels == ("n=32", "n=64", "n=128")
        assert [r.experiment for _, r in entry.results] == ["exp_s32", "exp_s64", "exp_s128"]

    def test_unknown_key_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get(hex_key("absent")) is None
        assert cache.stats()["misses"] == 1

    def test_malformed_key_rejected(self, tmp_path):
        cache = ResultCache(tmp_path)
        with pytest.raises(ValueError):
            cache.get("../../etc/passwd")
        with pytest.raises(ValueError):
            cache.put("UPPER", [(None, tiny_result())])

    def test_empty_put_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ResultCache(tmp_path).put(hex_key("empty"), [])

    def test_staging_area_is_empty_after_put(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(hex_key("staged"), [(None, tiny_result())])
        assert list((tmp_path / "tmp").iterdir()) == []


class TestCorruption:
    """A defective entry is a miss (re-run and overwrite), never a crash."""

    def put_one(self, tmp_path, tag="corrupt"):
        cache = ResultCache(tmp_path)
        key = hex_key(tag)
        entry = cache.put(key, [(None, tiny_result())])
        return cache, key, entry.path

    def test_truncated_csv_is_a_miss_and_purges(self, tmp_path):
        # A truncated CSV may still *parse* (fewer rows, clean header) — the
        # per-file checksums in entry.json are what catch it.
        cache, key, path = self.put_one(tmp_path)
        csv_path = next(path.rglob("rows.csv"))
        csv_path.write_bytes(csv_path.read_bytes()[:7])
        assert cache.get(key) is None
        assert not path.exists(), "corrupt entry must be purged"
        # Re-running the computation overwrites the slot cleanly.
        cache.put(key, [(None, tiny_result())])
        assert cache.get(key) is not None

    def test_bitflipped_artifact_is_a_miss(self, tmp_path):
        cache, key, path = self.put_one(tmp_path, "bitflip")
        manifest = next(path.rglob("manifest.json"))
        data = bytearray(manifest.read_bytes())
        data[len(data) // 2] ^= 0xFF
        manifest.write_bytes(bytes(data))
        assert cache.get(key) is None

    def test_missing_entry_manifest_is_a_miss(self, tmp_path):
        cache, key, path = self.put_one(tmp_path, "manifestless")
        (path / "entry.json").unlink()
        assert cache.get(key) is None
        assert not path.exists()

    def test_garbage_entry_manifest_is_a_miss(self, tmp_path):
        cache, key, path = self.put_one(tmp_path, "garbage")
        (path / "entry.json").write_text("\x00\x01 not json at all")
        assert cache.get(key) is None

    def test_key_mismatch_is_a_miss(self, tmp_path):
        cache, key, path = self.put_one(tmp_path, "mismatch")
        manifest = json.loads((path / "entry.json").read_text())
        manifest["key"] = hex_key("other")
        (path / "entry.json").write_text(json.dumps(manifest))
        assert cache.get(key) is None

    def test_missing_result_dir_is_a_miss(self, tmp_path):
        import shutil

        cache, key, path = self.put_one(tmp_path, "slotless")
        shutil.rmtree(path / "r000")
        assert cache.get(key) is None


class TestLru:
    def entry_bytes(self, tmp_path):
        """Size of one padded entry, measured empirically."""
        probe = ResultCache(tmp_path / "probe")
        entry = probe.put(hex_key("probe"), [(None, tiny_result("probe", pad=20))])
        return sum(f.stat().st_size for f in entry.path.rglob("*") if f.is_file())

    def test_eviction_respects_size_cap_and_recency(self, tmp_path):
        size = self.entry_bytes(tmp_path)
        # Three entries fit; the fourth put pushes over budget and must evict.
        cache = ResultCache(tmp_path / "lru", max_bytes=int(size * 3.5))
        keys = [hex_key(f"lru{i}") for i in range(3)]
        for index, key in enumerate(keys):
            cache.put(key, [(None, tiny_result(f"lru{index}", pad=20))])
            # Deterministic, well-separated recency stamps.
            os.utime(
                cache._entry_dir(key) / "entry.json", ns=(10**9 * index, 10**9 * index)
            )
        # Touch the oldest entry so the *middle* one becomes LRU.
        os.utime(cache._entry_dir(keys[0]) / "entry.json", ns=(10**10, 10**10))
        newest = hex_key("lru-new")
        cache.put(newest, [(None, tiny_result("new", pad=20))])
        survivors = set(cache.keys())
        assert newest in survivors
        assert keys[0] in survivors, "recently touched entry must survive"
        assert keys[1] not in survivors, "least recently used entry must be evicted"
        assert cache.stats()["bytes"] <= int(size * 3.5)
        assert cache.stats()["evictions"] >= 1

    def test_newest_entry_survives_even_alone_over_budget(self, tmp_path):
        cache = ResultCache(tmp_path, max_bytes=1)
        key = hex_key("oversize")
        cache.put(key, [(None, tiny_result(pad=20))])
        assert cache.keys() == [key]

    def test_no_cap_means_no_eviction(self, tmp_path):
        cache = ResultCache(tmp_path)
        for i in range(4):
            cache.put(hex_key(f"nocap{i}"), [(None, tiny_result(f"nc{i}"))])
        assert cache.stats()["entries"] == 4
        assert cache.stats()["evictions"] == 0

    def test_invalid_cap_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ResultCache(tmp_path, max_bytes=0)


class TestConcurrency:
    def test_concurrent_identical_puts_yield_one_clean_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = hex_key("race")
        start = threading.Barrier(8)
        errors = []

        def writer():
            try:
                start.wait()
                cache.put(key, [(None, tiny_result("race"))])
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [threading.Thread(target=writer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert cache.keys() == [key]
        entry = cache.get(key)
        assert entry is not None
        assert entry.results[0][1].rows == tiny_result("race").rows
        assert list((tmp_path / "tmp").iterdir()) == []

    def test_concurrent_reads_during_write_never_see_partial_state(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = hex_key("readwrite")
        stop = threading.Event()
        seen = []

        def reader():
            while not stop.is_set():
                entry = cache.get(key)
                if entry is not None:
                    # Whatever we see must be complete and loadable.
                    seen.append(len(entry.results))

        t = threading.Thread(target=reader)
        t.start()
        try:
            cache.put(key, [(None, tiny_result("rw"))])
        finally:
            stop.set()
            t.join()
        assert cache.get(key) is not None
        assert all(count == 1 for count in seen)
