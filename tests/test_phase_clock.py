"""Tests for the UniformPhaseClock wrapper and Theorem 2.2 behaviour."""

from __future__ import annotations


from repro.analysis.synchronization import analyze_synchrony
from repro.core.dynamic_counting import DynamicSizeCounting
from repro.core.params import empirical_parameters
from repro.core.phase_clock import UniformPhaseClock
from repro.core.state import CountingState, Phase
from repro.engine.recorder import EventRecorder
from repro.engine.simulator import Simulator


class TestWrapper:
    def test_params_exposed(self):
        clock = UniformPhaseClock()
        assert clock.params.tau1 == 6.0

    def test_wraps_custom_counting_protocol(self):
        counting = DynamicSizeCounting(empirical_parameters(k=4))
        clock = UniformPhaseClock(counting)
        assert clock.counting is counting
        assert clock.params.k == 4

    def test_initial_state_delegates(self, rng):
        clock = UniformPhaseClock()
        state = clock.initial_state(rng)
        assert state.max_value == 1

    def test_output_is_estimate(self):
        clock = UniformPhaseClock()
        assert clock.output(CountingState(max_value=11, last_max=7)) == 11.0

    def test_hour_of(self):
        clock = UniformPhaseClock()
        assert clock.hour_of(CountingState(max_value=10, last_max=10, time=50)) is Phase.EXCHANGE
        assert clock.hour_of(CountingState(max_value=10, last_max=10, time=5)) is Phase.RESET

    def test_hand_position_range(self):
        clock = UniformPhaseClock()
        fresh = CountingState(max_value=10, last_max=10, time=60)
        nearly_done = CountingState(max_value=10, last_max=10, time=1)
        assert clock.hand_position(fresh) == 0.0
        assert 0.9 < clock.hand_position(nearly_done) <= 1.0
        # Degenerate states clamp instead of exploding.
        assert clock.hand_position(CountingState(max_value=0, last_max=0, time=5)) == 0.0

    def test_expected_round_length_monotone(self):
        clock = UniformPhaseClock()
        assert clock.expected_round_length(20) > clock.expected_round_length(10)

    def test_memory_bits_delegates(self):
        clock = UniformPhaseClock()
        state = CountingState(max_value=10, last_max=10, time=60)
        assert clock.memory_bits(state) == clock.counting.memory_bits(state)

    def test_describe_nests_counting_description(self):
        description = UniformPhaseClock().describe()
        assert description["counting"]["name"] == "dynamic-size-counting"

    def test_reset_events_relabelled_as_ticks(self, make_ctx, event_collector):
        clock = UniformPhaseClock()
        u = CountingState(max_value=10, last_max=10, time=0)
        v = CountingState(max_value=10, last_max=10, time=20)
        clock.interact(u, v, make_ctx(sink=event_collector))
        assert event_collector.kinds() == ["tick"]


class TestTheorem22Behaviour:
    def test_every_agent_ticks_once_per_burst(self):
        """The core claim of Theorem 2.2, checked on a converged population."""
        n = 100
        clock = UniformPhaseClock()
        recorder = EventRecorder(kinds={"tick"})
        simulator = Simulator(clock, n, seed=71, recorders=[recorder])
        simulator.run(1400)
        # Ignore the convergence transient: analyse ticks from the second half.
        cutoff = simulator.interactions_executed // 2
        events = [e for e in recorder.events if e.interaction >= cutoff]
        report = analyze_synchrony(events, n, gap_threshold=3 * n)
        assert report.total_bursts >= 2
        assert report.exact_fraction >= 0.7

    def test_period_scales_like_n_log_n(self):
        """The clock period per agent grows with log n (Theta(n log n) interactions)."""
        periods = {}
        for n in (60, 240):
            clock = UniformPhaseClock()
            recorder = EventRecorder(kinds={"tick"})
            simulator = Simulator(clock, n, seed=72, recorders=[recorder])
            simulator.run(700)
            cutoff = simulator.interactions_executed // 2
            events = [e for e in recorder.events if e.interaction >= cutoff]
            report = analyze_synchrony(events, n, gap_threshold=3 * n)
            periods[n] = report.mean_period() / n  # period in parallel time
        # log2(240)/log2(60) is about 1.34; the measured ratio should exceed 1
        # clearly, and stay well below e.g. linear scaling in n (ratio 4).
        ratio = periods[240] / periods[60]
        assert 1.0 < ratio < 3.0
