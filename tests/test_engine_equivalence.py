"""Cross-validation of the batched engine against the exact sequential engine.

The batched engine approximates the sequential scheduler (responder states
are refreshed only between sub-batches).  These tests check that the two
engines agree on the *statistics that the figures report*: the converged
estimate level and the round length of the clock, for the same population
size and protocol parameters.
"""

from __future__ import annotations

import math

from repro.core.dynamic_counting import DynamicSizeCounting
from repro.core.vectorized import VectorizedDynamicCounting
from repro.engine.batch_engine import BatchedSimulator
from repro.engine.recorder import EstimateRecorder, EventRecorder
from repro.engine.simulator import Simulator


def _sequential_steady_low(n: int, parallel_time: int, seed: int) -> float:
    """Low point of the median-estimate oscillation over the second half of a run.

    The low point corresponds to a freshly sampled round maximum, which
    concentrates tightly around ``log2(k * n)`` and is therefore a much more
    stable statistic than any single snapshot.
    """
    recorder = EstimateRecorder()
    simulator = Simulator(DynamicSizeCounting(), n, seed=seed, recorders=[recorder])
    simulator.run(parallel_time)
    tail = [row.median for row in recorder.rows if row.parallel_time > parallel_time // 2]
    return min(tail)


def _batched_steady_low(n: int, parallel_time: int, seed: int) -> float:
    simulator = BatchedSimulator(VectorizedDynamicCounting(), n, seed=seed)
    result = simulator.run(parallel_time)
    tail = [s.median for s in result.snapshots if s.parallel_time > parallel_time // 2]
    return min(tail)


class TestSteadyStateAgreement:
    def test_converged_estimates_agree_within_tolerance(self):
        # The horizon must cover several clock rounds past convergence so
        # that the initial (inflated) maximum has been forgotten in both
        # engines before the tail window starts.
        n, horizon = 600, 1000
        sequential = _sequential_steady_low(n, horizon, seed=101)
        batched = _batched_steady_low(n, horizon, seed=202)
        # Both should sit near log2(k * n); allow slack for run-to-run
        # variation in the maximum of the GRVs.
        assert abs(sequential - batched) <= 3.0
        reference = math.log2(16 * n)
        assert abs(sequential - reference) <= 3.5
        assert abs(batched - reference) <= 3.5


class TestRoundLengthAgreement:
    def test_reset_rates_are_comparable(self):
        """Resets per agent per parallel time unit agree within a factor of two.

        The measurement window spans several clock rounds; shorter windows
        would quantise to "how many reset bursts happened to fall inside"
        and make the comparison meaningless.
        """
        n, horizon, warmup = 500, 1000, 150

        events = EventRecorder(kinds={"reset"})
        simulator = Simulator(DynamicSizeCounting(), n, seed=111, recorders=[events])
        simulator.run(horizon)
        sequential_rate = len(
            [e for e in events.events if e.interaction >= warmup * n]
        ) / (n * (horizon - warmup))

        batched = BatchedSimulator(VectorizedDynamicCounting(), n, seed=222)
        batched.run(warmup)
        start = int(batched.arrays["resets"].sum())
        batched.run(horizon - warmup)
        end = int(batched.arrays["resets"].sum())
        batched_rate = (end - start) / (n * (horizon - warmup))

        assert sequential_rate > 0
        assert batched_rate > 0
        # The batched engine's reset bursts are slightly sharper than the
        # sequential engine's, so allow a factor-2 band on the rate ratio;
        # what matters for the figures is that rounds happen at a comparable
        # cadence, not that the engines agree interaction for interaction.
        ratio = batched_rate / sequential_rate
        assert 0.5 <= ratio <= 2.0
