"""Cross-engine equivalence matrix.

Three engines implement the shared :class:`repro.engine.api.Engine`
contract, and this module pins down how closely they agree:

* **sequential vs array** — *trajectory-exact*: the array engine runs the
  identical scheduler over struct-of-arrays state, and the ``interact_one``
  kernels mirror their scalar protocols including the order of random
  draws, so the two engines agree bit-for-bit under a shared seed.
* **sequential vs batched** — *statistical*: the batched engine refreshes
  responder states only between sub-batches, so only the statistics the
  figures report are compared (converged estimate level, clock round
  cadence, epidemic spread time, consensus outcomes).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.dynamic_counting import DynamicSizeCounting
from repro.core.vectorized import VectorizedDynamicCounting
from repro.engine.array_engine import ArraySimulator
from repro.engine.batch_engine import BatchedSimulator
from repro.engine.population import Population
from repro.engine.recorder import EstimateRecorder, EventRecorder
from repro.engine.simulator import Simulator
from repro.protocols.epidemic import InfectionEpidemic, MaxEpidemic
from repro.protocols.junta import JuntaElection
from repro.protocols.majority import ApproximateMajority
from repro.protocols.vectorized import (
    VectorizedApproximateMajority,
    VectorizedInfectionEpidemic,
    VectorizedJuntaElection,
    VectorizedMaxEpidemic,
)


def _sequential_steady_low(n: int, parallel_time: int, seed: int) -> float:
    """Low point of the median-estimate oscillation over the second half of a run.

    The low point corresponds to a freshly sampled round maximum, which
    concentrates tightly around ``log2(k * n)`` and is therefore a much more
    stable statistic than any single snapshot.
    """
    recorder = EstimateRecorder()
    simulator = Simulator(
        DynamicSizeCounting(), n, seed=seed, recorders=[recorder], snapshot_stats=False
    )
    simulator.run(parallel_time)
    tail = [row.median for row in recorder.rows if row.parallel_time > parallel_time // 2]
    return min(tail)


def _batched_steady_low(n: int, parallel_time: int, seed: int) -> float:
    simulator = BatchedSimulator(VectorizedDynamicCounting(), n, seed=seed)
    result = simulator.run(parallel_time)
    tail = [s.median for s in result.snapshots if s.parallel_time > parallel_time // 2]
    return min(tail)


class TestSteadyStateAgreement:
    def test_converged_estimates_agree_within_tolerance(self):
        # The horizon must cover several clock rounds past convergence so
        # that the initial (inflated) maximum has been forgotten in both
        # engines before the tail window starts.
        n, horizon = 600, 1000
        sequential = _sequential_steady_low(n, horizon, seed=101)
        batched = _batched_steady_low(n, horizon, seed=202)
        # Both should sit near log2(k * n); allow slack for run-to-run
        # variation in the maximum of the GRVs.
        assert abs(sequential - batched) <= 3.0
        reference = math.log2(16 * n)
        assert abs(sequential - reference) <= 3.5
        assert abs(batched - reference) <= 3.5


class TestRoundLengthAgreement:
    def test_reset_rates_are_comparable(self):
        """Resets per agent per parallel time unit agree within a factor of two.

        The measurement window spans several clock rounds; shorter windows
        would quantise to "how many reset bursts happened to fall inside"
        and make the comparison meaningless.
        """
        n, horizon, warmup = 500, 1000, 150

        events = EventRecorder(kinds={"reset"})
        simulator = Simulator(
            DynamicSizeCounting(), n, seed=111, recorders=[events], snapshot_stats=False
        )
        simulator.run(horizon)
        sequential_rate = len(
            [e for e in events.events if e.interaction >= warmup * n]
        ) / (n * (horizon - warmup))

        batched = BatchedSimulator(VectorizedDynamicCounting(), n, seed=222)
        batched.run(warmup)
        start = int(batched.arrays["resets"].sum())
        batched.run(horizon - warmup)
        end = int(batched.arrays["resets"].sum())
        batched_rate = (end - start) / (n * (horizon - warmup))

        assert sequential_rate > 0
        assert batched_rate > 0
        # The batched engine's reset bursts are slightly sharper than the
        # sequential engine's, so allow a factor-2 band on the rate ratio;
        # what matters for the figures is that rounds happen at a comparable
        # cadence, not that the engines agree interaction for interaction.
        ratio = batched_rate / sequential_rate
        assert 0.5 <= ratio <= 2.0


class TestArrayEngineExactEquivalence:
    """The array engine reproduces the sequential engine bit-for-bit."""

    def test_dynamic_counting_identical_trajectories(self):
        n, horizon, seed = 100, 150, 7
        sequential = Simulator(DynamicSizeCounting(), n, seed=seed)
        seq_result = sequential.run(horizon)
        array = ArraySimulator(VectorizedDynamicCounting(), n, seed=seed)
        arr_result = array.run(horizon)

        assert seq_result.interactions == arr_result.interactions == n * horizon
        assert [s.minimum for s in seq_result.snapshots] == [
            s.minimum for s in arr_result.snapshots
        ]
        assert [s.median for s in seq_result.snapshots] == [
            s.median for s in arr_result.snapshots
        ]
        assert [s.maximum for s in seq_result.snapshots] == [
            s.maximum for s in arr_result.snapshots
        ]
        assert np.array_equal(
            np.array(sequential.outputs(), dtype=float), array.outputs()
        )

    def test_dynamic_counting_full_state_agreement(self):
        n, horizon, seed = 60, 80, 42
        sequential = Simulator(DynamicSizeCounting(), n, seed=seed)
        sequential.run(horizon)
        array = ArraySimulator(VectorizedDynamicCounting(), n, seed=seed)
        array.run(horizon)
        states = sequential.population.states()
        for key, attr in (
            ("max", "max_value"),
            ("last_max", "last_max"),
            ("time", "time"),
            ("interactions", "interactions"),
        ):
            scalar = np.array([getattr(s, attr) for s in states], dtype=float)
            assert np.array_equal(scalar, array.arrays[key].astype(float)), key

    def test_junta_identical_trajectories(self):
        """Junta consumes per-interaction coins; draw order must match too."""
        n, horizon, seed = 80, 40, 3
        sequential = Simulator(JuntaElection(), n, seed=seed)
        sequential.run(horizon)
        array = ArraySimulator(VectorizedJuntaElection(), n, seed=seed)
        array.run(horizon)
        assert np.array_equal(
            np.array([float(x) for x in sequential.outputs()]), array.outputs()
        )
        levels = np.array([s.level for s in sequential.population.states()])
        assert np.array_equal(levels, array.arrays["level"])
        seen = np.array([s.max_seen_level for s in sequential.population.states()])
        assert np.array_equal(seen, array.arrays["max_seen"])

    def test_max_epidemic_identical_trajectories(self):
        n, horizon, seed, peak = 90, 25, 11, 7.0
        protocol = MaxEpidemic(one_way=True)
        population = Population([peak] + [0] * (n - 1))
        sequential = Simulator(protocol, population, seed=seed)
        seq_result = sequential.run(horizon)

        vectorized = VectorizedMaxEpidemic(one_way=True)
        array = ArraySimulator(
            vectorized, n, seed=seed, initial_arrays=vectorized.seeded_arrays(n, peak)
        )
        arr_result = array.run(horizon)
        assert np.array_equal(
            np.array(sequential.outputs(), dtype=float), array.outputs()
        )
        assert [s.maximum for s in seq_result.snapshots] == [
            s.maximum for s in arr_result.snapshots
        ]

    def test_majority_identical_trajectories(self):
        n = 100
        codes = {"A": 1, "B": -1, "U": 0}
        scalar_states = ["A"] * 35 + ["B"] * 25 + ["U"] * 40
        sequential = Simulator(ApproximateMajority(), Population(scalar_states), seed=5)
        sequential.run(60)

        vectorized = VectorizedApproximateMajority()
        array = ArraySimulator(
            vectorized, n, seed=5, initial_arrays=vectorized.arrays_from_counts(35, 25, 40)
        )
        array.run(60)
        mapped = np.array([codes[s] for s in sequential.population.states()])
        assert np.array_equal(mapped.astype(float), array.outputs())

    def test_infection_epidemic_identical_trajectories(self):
        n, seed = 70, 9
        sequential = Simulator(
            InfectionEpidemic(), Population([1] + [0] * (n - 1)), seed=seed
        )
        sequential.run(30)
        vectorized = VectorizedInfectionEpidemic()
        array = ArraySimulator(
            vectorized, n, seed=seed, initial_arrays=vectorized.seeded_arrays(n)
        )
        array.run(30)
        assert np.array_equal(
            np.array(sequential.outputs(), dtype=float), array.outputs()
        )


def _sequential_spread_time(n: int, seed: int) -> int:
    simulator = Simulator(InfectionEpidemic(), Population([1] + [0] * (n - 1)), seed=seed)
    result = simulator.run(
        10 * int(math.log2(n)) + 50,
        stop_when=lambda sim: sum(sim.population.states()) == n,
    )
    assert result.stopped_early, "epidemic did not finish within the horizon"
    return result.parallel_time


def _batched_spread_time(n: int, seed: int) -> int:
    vectorized = VectorizedInfectionEpidemic()
    simulator = BatchedSimulator(
        vectorized, n, seed=seed, initial_arrays=vectorized.seeded_arrays(n)
    )
    result = simulator.run(
        10 * int(math.log2(n)) + 50,
        stop_when=lambda sim, snapshot: snapshot.minimum >= 1.0,
    )
    assert result.stopped_early, "epidemic did not finish within the horizon"
    return result.parallel_time


class TestBatchedStatisticalEquivalence:
    """The batched engine matches the figures' statistics at small n."""

    def test_epidemic_spread_times_comparable(self):
        n = 400
        sequential = np.mean([_sequential_spread_time(n, seed) for seed in (1, 2, 3)])
        batched = np.mean([_batched_spread_time(n, seed) for seed in (4, 5, 6)])
        # Both engines need Theta(log n) parallel time; the batched engine's
        # synchronous rounds spread marginally faster, hence the loose band.
        assert sequential > 0 and batched > 0
        ratio = batched / sequential
        assert 1 / 3 <= ratio <= 3

    def test_junta_statistics_comparable(self):
        n, horizon = 400, 30
        sequential = Simulator(JuntaElection(), n, seed=21)
        sequential.run(horizon)
        seq_levels = np.array([s.level for s in sequential.population.states()])

        batched = BatchedSimulator(VectorizedJuntaElection(), n, seed=22)
        batched.run(horizon)
        batch_levels = batched.arrays["level"]

        # The maximum coin level concentrates around log2(n) +- O(1).
        assert abs(int(seq_levels.max()) - int(batch_levels.max())) <= 3
        # Junta sizes are polylogarithmic on both engines: small but nonzero.
        seq_junta = sum(1 for out in sequential.outputs() if out)
        batch_junta = int(batched.outputs().sum())
        assert 0 < seq_junta < n / 4
        assert 0 < batch_junta < n / 4

    def test_majority_consensus_agrees(self):
        n, a, b = 300, 195, 105
        sequential = Simulator(
            ApproximateMajority(), Population(["A"] * a + ["B"] * b), seed=31
        )
        sequential.run(60)
        seq_a = sum(1 for s in sequential.population.states() if s == "A")

        vectorized = VectorizedApproximateMajority()
        batched = BatchedSimulator(
            vectorized, n, seed=32, initial_arrays=vectorized.arrays_from_counts(a, b)
        )
        batched.run(60)
        batch_a = int((batched.arrays["opinion"] == 1).sum())

        # With a 65/35 initial split both engines reach (near-)consensus on A.
        assert seq_a >= 0.9 * n
        assert batch_a >= 0.9 * n


class TestArrayVsBatchedDynamicCounting:
    def test_steady_state_agreement(self):
        """The exact array engine sits at the same plateau as the batched one.

        The horizon covers several clock rounds past convergence; the
        tolerance matches the sequential-vs-batched steady-state test (the
        array engine is trajectory-identical to the sequential engine, so
        its run-to-run variation is the same).
        """
        n, horizon = 300, 1000
        array = ArraySimulator(VectorizedDynamicCounting(), n, seed=77)
        result = array.run(horizon)
        array_low = min(
            s.median for s in result.snapshots if s.parallel_time > horizon // 2
        )
        batched_low = _batched_steady_low(n, horizon, seed=88)
        assert abs(array_low - batched_low) <= 3.0
        reference = math.log2(16 * n)
        assert abs(array_low - reference) <= 3.5
        assert abs(batched_low - reference) <= 3.5


@pytest.mark.parametrize("engine_cls", [ArraySimulator, BatchedSimulator])
def test_resize_schedule_supported_by_both_array_engines(engine_cls):
    simulator = engine_cls(VectorizedDynamicCounting(), 200, seed=13, resize_schedule=[(5, 50)])
    result = simulator.run(10)
    assert result.final_size == 50
    sizes = [s.population_size for s in result.snapshots]
    assert sizes[0] == 200 and sizes[-1] == 50
