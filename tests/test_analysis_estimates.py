"""Tests for estimate-quality metrics and convergence/holding analysis."""

from __future__ import annotations


import pytest

from repro.analysis.convergence import (
    loose_stabilization_report,
    measure_convergence,
    measure_holding,
)
from repro.analysis.estimates import (
    deviation_series,
    estimates_valid,
    relative_deviation,
    steady_state_window,
    summarize_window,
)
from repro.engine.recorder import SnapshotStats


def snap(t: int, n: int, lo: float, med: float, hi: float) -> SnapshotStats:
    return SnapshotStats(parallel_time=t, population_size=n, minimum=lo, median=med, maximum=hi)


class TestRelativeDeviation:
    def test_values(self):
        row = relative_deviation(snap(3, 1024, 5, 10, 20))
        assert row.minimum == 0.5
        assert row.median == 1.0
        assert row.maximum == 2.0
        assert row.parallel_time == 3

    def test_rejects_degenerate_population(self):
        with pytest.raises(ValueError):
            relative_deviation(snap(0, 1, 1, 1, 1))

    def test_series_mapping(self):
        rows = [snap(1, 1024, 10, 10, 10), snap(2, 1024, 20, 20, 20)]
        deviations = deviation_series(rows)
        assert [d.median for d in deviations] == [1.0, 2.0]


class TestValidity:
    def test_valid_configuration(self):
        assert estimates_valid(snap(0, 1024, 6, 10, 14))

    def test_invalid_when_minimum_too_low(self):
        assert not estimates_valid(snap(0, 1024, 2, 10, 14))

    def test_invalid_when_maximum_too_high(self):
        assert not estimates_valid(snap(0, 1024, 6, 10, 999))

    def test_custom_factors(self):
        row = snap(0, 1024, 9, 10, 25)
        assert estimates_valid(row, lower_factor=0.5, upper_factor=3.0)
        assert not estimates_valid(row, lower_factor=0.5, upper_factor=2.0)

    def test_empty_population_is_invalid(self):
        assert not estimates_valid(snap(0, 0, 1, 1, 1))


class TestWindows:
    def test_steady_state_window_drops_prefix(self):
        rows = [snap(t, 100, 1, 1, 1) for t in range(10)]
        assert len(steady_state_window(rows, skip_fraction=0.5)) == 5
        with pytest.raises(ValueError):
            steady_state_window(rows, skip_fraction=1.0)

    def test_summarize_window(self):
        rows = [snap(1, 100, 4, 8, 12), snap(2, 100, 5, 10, 11), snap(3, 100, 6, 9, 20)]
        summary = summarize_window(rows)
        assert summary["minimum"] == 4
        assert summary["maximum"] == 20
        assert summary["median"] == 9

    def test_summarize_empty_window(self):
        with pytest.raises(ValueError):
            summarize_window([])


class TestConvergence:
    def _trace(self) -> list[SnapshotStats]:
        n = 1024  # log2 = 10
        rows = []
        for t in range(5):
            rows.append(snap(t, n, 1, 1, 1))  # invalid start
        for t in range(5, 30):
            rows.append(snap(t, n, 8, 11, 14))  # valid plateau
        for t in range(30, 35):
            rows.append(snap(t, n, 1, 11, 14))  # broken again
        return rows

    def test_measure_convergence_finds_first_persistent_valid_time(self):
        assert measure_convergence(self._trace(), persistence=5) == 5

    def test_measure_convergence_none_when_never_valid(self):
        rows = [snap(t, 1024, 1, 1, 1) for t in range(10)]
        assert measure_convergence(rows) is None

    def test_persistence_must_be_positive(self):
        with pytest.raises(ValueError):
            measure_convergence(self._trace(), persistence=0)

    def test_measure_holding_without_grace(self):
        holding, until_end = measure_holding(self._trace(), 5)
        assert holding == 29 - 5
        assert not until_end

    def test_measure_holding_with_grace_survives_blips(self):
        rows = self._trace()
        holding, until_end = measure_holding(rows, 5, grace=10)
        assert until_end  # the 5 broken snapshots fit within the grace budget
        assert holding >= 24

    def test_measure_holding_grace_validation(self):
        with pytest.raises(ValueError):
            measure_holding(self._trace(), 5, grace=-1)

    def test_loose_stabilization_report(self):
        report = loose_stabilization_report(self._trace(), persistence=5)
        assert report.convergence_time == 5
        assert report.holding_time == 24
        assert not report.held_until_end

    def test_loose_stabilization_report_unconverged(self):
        rows = [snap(t, 1024, 1, 1, 1) for t in range(10)]
        report = loose_stabilization_report(rows)
        assert report.convergence_time is None
        assert report.holding_time is None

    def test_holding_until_end_of_trace(self):
        rows = [snap(t, 1024, 8, 10, 12) for t in range(20)]
        report = loose_stabilization_report(rows, persistence=3)
        assert report.convergence_time == 0
        assert report.held_until_end
        assert report.holding_time == 19
