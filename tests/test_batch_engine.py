"""Tests for the batched (vectorised) engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.vectorized import VectorizedDynamicCounting
from repro.engine.batch_engine import BatchedSimulator, VectorizedProtocol
from repro.engine.errors import ConfigurationError
from repro.engine.rng import RandomSource


class VectorizedMaxEpidemic(VectorizedProtocol):
    """Minimal vectorised protocol used to test the engine in isolation."""

    name = "vectorized-max-epidemic"

    def initial_arrays(self, n, rng):
        return {"value": np.zeros(n, dtype=np.float64)}

    def interact_batch(self, arrays, initiators, responders, rng):
        arrays["value"][initiators] = np.maximum(
            arrays["value"][initiators], arrays["value"][responders]
        )

    def output_array(self, arrays):
        return arrays["value"]


class TestConstruction:
    def test_initial_arrays_created(self):
        sim = BatchedSimulator(VectorizedMaxEpidemic(), 10, seed=1)
        assert sim.size == 10
        assert np.all(sim.outputs() == 0)

    def test_rejects_small_population(self):
        with pytest.raises(ConfigurationError):
            BatchedSimulator(VectorizedMaxEpidemic(), 1, seed=1)

    def test_rejects_bad_sub_batches(self):
        with pytest.raises(ConfigurationError):
            BatchedSimulator(VectorizedMaxEpidemic(), 10, seed=1, sub_batches=0)

    def test_rejects_inconsistent_initial_arrays(self):
        with pytest.raises(ConfigurationError):
            BatchedSimulator(
                VectorizedMaxEpidemic(),
                10,
                seed=1,
                initial_arrays={"value": np.zeros(4)},
            )

    def test_initial_arrays_are_copied(self):
        source = {"value": np.zeros(5)}
        sim = BatchedSimulator(VectorizedMaxEpidemic(), 5, seed=1, initial_arrays=source)
        sim.arrays["value"][0] = 99
        assert source["value"][0] == 0

    def test_invalid_resize_schedule(self):
        with pytest.raises(ConfigurationError):
            BatchedSimulator(VectorizedMaxEpidemic(), 10, seed=1, resize_schedule=[(-1, 5)])
        with pytest.raises(ConfigurationError):
            BatchedSimulator(VectorizedMaxEpidemic(), 10, seed=1, resize_schedule=[(1, 1)])


class TestRun:
    def test_epidemic_spreads(self):
        initial = {"value": np.zeros(100)}
        initial["value"][0] = 7
        sim = BatchedSimulator(VectorizedMaxEpidemic(), 100, seed=2, initial_arrays=initial)
        result = sim.run(60)
        assert np.all(sim.outputs() == 7)
        assert result.final_size == 100
        assert result.parallel_time == 60

    def test_snapshots_per_step(self):
        sim = BatchedSimulator(VectorizedMaxEpidemic(), 10, seed=1)
        result = sim.run(5)
        assert [s.parallel_time for s in result.snapshots] == [1, 2, 3, 4, 5]

    def test_snapshot_every(self):
        sim = BatchedSimulator(VectorizedMaxEpidemic(), 10, seed=1)
        result = sim.run(6, snapshot_every=3)
        assert [s.parallel_time for s in result.snapshots] == [3, 6]

    def test_stop_when(self):
        sim = BatchedSimulator(VectorizedMaxEpidemic(), 10, seed=1)
        result = sim.run(100, stop_when=lambda s, snap: snap.parallel_time >= 4)
        assert result.parallel_time == 4

    def test_stop_when_sets_stopped_early(self):
        sim = BatchedSimulator(VectorizedMaxEpidemic(), 10, seed=1)
        result = sim.run(100, stop_when=lambda s, snap: snap.parallel_time >= 4)
        assert result.stopped_early is True

    def test_full_run_is_not_stopped_early(self):
        sim = BatchedSimulator(VectorizedMaxEpidemic(), 10, seed=1)
        result = sim.run(5)
        assert result.stopped_early is False
        # A stop condition that never fires also counts as a full run.
        sim = BatchedSimulator(VectorizedMaxEpidemic(), 10, seed=1)
        result = sim.run(5, stop_when=lambda s, snap: False)
        assert result.stopped_early is False

    def test_interactions_counted(self):
        sim = BatchedSimulator(VectorizedMaxEpidemic(), 10, seed=1)
        result = sim.run(5)
        assert result.interactions == 50

    def test_negative_time_rejected(self):
        sim = BatchedSimulator(VectorizedMaxEpidemic(), 10, seed=1)
        with pytest.raises(ConfigurationError):
            sim.run(-1)

    def test_series_structure(self):
        sim = BatchedSimulator(VectorizedMaxEpidemic(), 10, seed=1)
        result = sim.run(3)
        series = result.series()
        assert len(series["parallel_time"]) == 3
        assert set(series) == {
            "parallel_time",
            "population_size",
            "minimum",
            "median",
            "maximum",
        }

    def test_reproducible_with_seed(self):
        outputs = []
        for _ in range(2):
            sim = BatchedSimulator(VectorizedDynamicCounting(), 200, seed=42)
            sim.run(50)
            outputs.append(sim.outputs().tolist())
        assert outputs[0] == outputs[1]


class TestResize:
    def test_shrink(self):
        sim = BatchedSimulator(VectorizedMaxEpidemic(), 100, seed=1)
        sim.resize_to(10)
        assert sim.size == 10

    def test_grow_uses_initial_state(self):
        initial = {"value": np.full(10, 5.0)}
        sim = BatchedSimulator(VectorizedMaxEpidemic(), 10, seed=1, initial_arrays=initial)
        sim.resize_to(20)
        assert sim.size == 20
        assert np.sum(sim.outputs() == 0) == 10

    def test_resize_noop(self):
        sim = BatchedSimulator(VectorizedMaxEpidemic(), 10, seed=1)
        sim.resize_to(10)
        assert sim.size == 10

    def test_resize_rejects_below_two(self):
        sim = BatchedSimulator(VectorizedMaxEpidemic(), 10, seed=1)
        with pytest.raises(ConfigurationError):
            sim.resize_to(1)

    def test_schedule_applied_during_run(self):
        sim = BatchedSimulator(
            VectorizedMaxEpidemic(), 50, seed=1, resize_schedule=[(3, 10), (6, 30)]
        )
        result = sim.run(8)
        sizes = {s.parallel_time: s.population_size for s in result.snapshots}
        assert sizes[2] == 50
        assert sizes[3] == 10
        assert sizes[6] == 30

    def test_shrink_keeps_subset_of_values(self):
        rng = RandomSource.from_seed(3)
        initial = {"value": np.arange(30, dtype=np.float64)}
        sim = BatchedSimulator(
            VectorizedMaxEpidemic(), 30, rng=rng, initial_arrays=initial
        )
        sim.resize_to(5)
        assert set(sim.outputs().tolist()).issubset(set(range(30)))

    def test_grow_rejects_missing_state_variable(self):
        """Growing fails loudly when initial_arrays lacks a live variable.

        This happens when a simulation is started from hand-built arrays
        with extra columns the protocol's ``initial_arrays`` does not
        produce: fresh agents would silently get no value for them.
        """
        initial = {"value": np.zeros(6), "extra": np.ones(6)}
        sim = BatchedSimulator(VectorizedMaxEpidemic(), 6, seed=1, initial_arrays=initial)
        with pytest.raises(ConfigurationError) as excinfo:
            sim.resize_to(12)
        assert "extra" in str(excinfo.value)
        # The failed grow must leave the state untouched (no partial resize).
        assert len(sim.arrays["value"]) == 6
        assert len(sim.arrays["extra"]) == 6

    def test_shrink_to_two_still_runs(self):
        sim = BatchedSimulator(VectorizedDynamicCounting(), 50, seed=4)
        sim.run(2)
        sim.resize_to(2)
        assert sim.size == 2
        result = sim.run(3)
        assert result.final_size == 2
        assert result.parallel_time == 5

    def test_resize_scheduled_at_time_zero(self):
        """A resize at time 0 fires at the first snapshot boundary."""
        sim = BatchedSimulator(
            VectorizedMaxEpidemic(), 40, seed=2, resize_schedule=[(0, 8)]
        )
        assert sim.size == 40
        result = sim.run(2)
        assert result.snapshots[0].population_size == 8
        assert result.final_size == 8

    def test_schedule_times_in_the_past_fire_immediately(self):
        sim = BatchedSimulator(
            VectorizedMaxEpidemic(), 40, seed=2, resize_schedule=[(1, 20), (2, 6)]
        )
        result = sim.run(4, snapshot_every=4)
        # Both events land on the single snapshot at t=4, applied in order.
        assert result.final_size == 6
