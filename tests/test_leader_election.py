"""Tests for the leader election substrates."""

from __future__ import annotations

from repro.engine.recorder import EventRecorder
from repro.engine.simulator import Simulator
from repro.protocols.leader_election import (
    CoinLevelLeaderElection,
    CoinLevelState,
    LeaderState,
    PairwiseEliminationLeaderElection,
)


class TestPairwiseElimination:
    def test_initial_state_is_contender(self, rng):
        assert PairwiseEliminationLeaderElection().initial_state(rng).is_contender

    def test_contender_meeting_contender_eliminates_responder(self, make_ctx):
        protocol = PairwiseEliminationLeaderElection()
        u, v = protocol.interact(LeaderState(True), LeaderState(True), make_ctx())
        assert u.is_contender
        assert not v.is_contender

    def test_non_contenders_unchanged(self, make_ctx):
        protocol = PairwiseEliminationLeaderElection()
        u, v = protocol.interact(LeaderState(False), LeaderState(True), make_ctx())
        assert not u.is_contender
        assert v.is_contender

    def test_elimination_event_emitted(self, make_ctx, event_collector):
        protocol = PairwiseEliminationLeaderElection()
        protocol.interact(LeaderState(True), LeaderState(True), make_ctx(sink=event_collector))
        assert event_collector.kinds() == ["eliminated"]

    def test_memory_is_one_bit(self):
        assert PairwiseEliminationLeaderElection().memory_bits(LeaderState()) == 1

    def test_contender_count_never_increases_and_never_zero(self):
        protocol = PairwiseEliminationLeaderElection()
        simulator = Simulator(protocol, 60, seed=6)
        previous = 60
        for _ in range(30):
            simulator.run(5)
            contenders = sum(1 for s in simulator.states() if s.is_contender)
            assert 1 <= contenders <= previous
            previous = contenders

    def test_converges_to_single_leader(self):
        protocol = PairwiseEliminationLeaderElection()
        simulator = Simulator(protocol, 40, seed=7)
        simulator.run(400)  # O(n) parallel time suffices for n = 40
        contenders = sum(1 for s in simulator.states() if s.is_contender)
        assert contenders == 1


class TestCoinLevelElection:
    def test_initial_state(self, rng):
        state = CoinLevelLeaderElection().initial_state(rng)
        assert state.is_contender and state.climbing and state.level == 0

    def test_lower_level_contender_retires(self, make_ctx):
        protocol = CoinLevelLeaderElection()
        low = CoinLevelState(level=1, climbing=False, is_contender=True)
        high = CoinLevelState(level=5, climbing=False, is_contender=True)
        u, v = protocol.interact(low, high, make_ctx())
        assert not u.is_contender
        assert u.max_seen_level == 5
        assert v.is_contender

    def test_equal_level_tie_break(self, make_ctx):
        protocol = CoinLevelLeaderElection()
        a = CoinLevelState(level=3, climbing=False, is_contender=True)
        b = CoinLevelState(level=3, climbing=False, is_contender=True)
        u, v = protocol.interact(a, b, make_ctx())
        assert u.is_contender
        assert not v.is_contender

    def test_max_level_cap(self, make_ctx):
        protocol = CoinLevelLeaderElection(max_level=2)
        state = CoinLevelState(level=2, climbing=True, is_contender=True)
        other = CoinLevelState(level=0, climbing=False, is_contender=False)
        for _ in range(20):
            state, other = protocol.interact(state, other, make_ctx())
        assert state.level <= 2

    def test_invalid_max_level(self):
        import pytest

        with pytest.raises(ValueError):
            CoinLevelLeaderElection(max_level=0)

    def test_converges_to_single_leader(self):
        protocol = CoinLevelLeaderElection()
        recorder = EventRecorder(kinds={"eliminated"})
        simulator = Simulator(protocol, 50, seed=8, recorders=[recorder])
        simulator.run(400)
        leaders = sum(1 for s in simulator.states() if protocol.output(s))
        assert leaders == 1
        assert len(recorder.events) >= 49

    def test_memory_bits_positive(self):
        protocol = CoinLevelLeaderElection()
        assert protocol.memory_bits(CoinLevelState(level=3, max_seen_level=7)) >= 5
