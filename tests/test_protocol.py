"""Tests for the protocol abstraction (repro.engine.protocol)."""

from __future__ import annotations

import pytest

from repro.engine.protocol import InteractionContext, OneWayProtocol, Protocol, ProtocolEvent
from repro.engine.rng import RandomSource


class Adder(Protocol[int]):
    """Toy two-way protocol: both agents move to the sum of their states."""

    name = "adder"

    def initial_state(self, rng):
        return 1

    def interact(self, u, v, ctx):
        total = u + v
        return total, total


class Decrementer(OneWayProtocol[int]):
    """Toy one-way protocol: the initiator decrements towards the responder."""

    name = "decrementer"

    def initial_state(self, rng):
        return 10

    def update_initiator(self, u, v, ctx):
        return min(u, v) - 1


class TestProtocolDefaults:
    def test_output_defaults_to_state(self):
        assert Adder().output(42) == 42

    def test_memory_bits_for_ints(self):
        protocol = Adder()
        assert protocol.memory_bits(0) == 1
        assert protocol.memory_bits(1) == 1
        assert protocol.memory_bits(7) == 3
        assert protocol.memory_bits(8) == 4

    def test_memory_bits_for_bool(self):
        assert Adder().memory_bits(True) == 1

    def test_memory_bits_unknown_type_raises(self):
        with pytest.raises(NotImplementedError):
            Adder().memory_bits("not an int")

    def test_describe_contains_name(self):
        description = Adder().describe()
        assert description["name"] == "adder"
        assert description["class"] == "Adder"


class TestOneWayProtocol:
    def test_responder_unchanged(self, make_ctx):
        protocol = Decrementer()
        u, v = protocol.interact(10, 5, make_ctx())
        assert v == 5
        assert u == 4


class TestInteractionContext:
    def test_reset_updates_fields(self, rng):
        ctx = InteractionContext(rng)
        ctx.reset(17, 3, 8)
        assert ctx.interaction == 17
        assert ctx.initiator_id == 3
        assert ctx.responder_id == 8

    def test_emit_without_sink_is_noop(self, rng):
        ctx = InteractionContext(rng, sink=None)
        ctx.reset(0, 1, 2)
        ctx.emit("tick")  # must not raise
        assert not ctx.has_sink

    def test_emit_defaults_agent_to_initiator(self, rng, event_collector):
        ctx = InteractionContext(rng, sink=event_collector)
        ctx.reset(5, 11, 22)
        ctx.emit("reset", grv=4)
        assert len(event_collector.events) == 1
        event = event_collector.events[0]
        assert isinstance(event, ProtocolEvent)
        assert event.kind == "reset"
        assert event.agent_id == 11
        assert event.interaction == 5
        assert event.data == {"grv": 4}

    def test_emit_explicit_agent(self, rng, event_collector):
        ctx = InteractionContext(rng, sink=event_collector)
        ctx.reset(5, 11, 22)
        ctx.emit("eliminated", agent_id=22)
        assert event_collector.events[0].agent_id == 22

    def test_has_sink(self, rng, event_collector):
        assert InteractionContext(rng, sink=event_collector).has_sink
        assert not InteractionContext(rng).has_sink

    def test_rng_accessible(self):
        source = RandomSource.from_seed(0)
        ctx = InteractionContext(source)
        assert ctx.rng is source
