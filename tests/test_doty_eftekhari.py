"""Tests for the Doty–Eftekhari dynamic counting baseline."""

from __future__ import annotations

import math

import pytest

from repro.engine.adversary import RemoveAllButAt
from repro.engine.recorder import EstimateRecorder
from repro.engine.simulator import Simulator
from repro.protocols.doty_eftekhari import DotyEftekhariCounting, DotyEftekhariState


class TestStateHandling:
    def test_initial_state_tracks_own_grv(self, rng):
        protocol = DotyEftekhariCounting()
        state = protocol.initial_state(rng)
        assert state.own_grv >= 1
        assert len(state.counters) >= state.own_grv

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            DotyEftekhariCounting(threshold_factor=0)
        with pytest.raises(ValueError):
            DotyEftekhariCounting(resample_factor=0)

    def test_state_copy_independent(self):
        state = DotyEftekhariState(own_grv=2, counters=[0, 1])
        clone = state.copy()
        clone.counters[0] = 99
        assert state.counters == [0, 1]

    def test_counters_grow_to_cover_both_agents(self, make_ctx):
        protocol = DotyEftekhariCounting()
        u = DotyEftekhariState(own_grv=2, counters=[0, 0])
        v = DotyEftekhariState(own_grv=5, counters=[0, 0, 0, 0, 0])
        u, v = protocol.interact(u, v, make_ctx())
        assert len(u.counters) == len(v.counters) == 5

    def test_source_counter_pinned_at_zero(self, make_ctx):
        protocol = DotyEftekhariCounting()
        u = DotyEftekhariState(own_grv=3, counters=[5, 5, 5])
        v = DotyEftekhariState(own_grv=1, counters=[5, 5, 5])
        u, v = protocol.interact(u, v, make_ctx())
        assert u.counters[2] == 0  # u is the source for value 3
        assert v.counters[0] == 0  # v is the source for value 1
        assert u.counters[1] == 6  # joint min + 1 for a value neither owns

    def test_memory_bits_grow_with_counter_list(self):
        protocol = DotyEftekhariCounting()
        small = protocol.memory_bits(DotyEftekhariState(own_grv=1, counters=[0]))
        large = protocol.memory_bits(
            DotyEftekhariState(own_grv=1, counters=[15] * 20)
        )
        assert large > small

    def test_output_reflects_largest_detected_value(self):
        protocol = DotyEftekhariCounting(threshold_factor=2)
        state = DotyEftekhariState(own_grv=1, counters=[0, 0, 0, 0, 100])
        # Value 5's counter (100) is far above threshold, value 4 is present.
        assert protocol.output(state) == 4.0


class TestDynamics:
    def test_estimates_log_n_after_convergence(self):
        n = 200
        protocol = DotyEftekhariCounting()
        recorder = EstimateRecorder()
        simulator = Simulator(protocol, n, seed=21, recorders=[recorder])
        simulator.run(150)
        final = recorder.rows[-1]
        log_n = math.log2(n)
        assert 0.5 * log_n <= final.median <= 2.5 * log_n

    def test_adapts_to_population_drop(self):
        """Unlike the static baseline, detection lets the estimate shrink."""
        n, keep = 400, 30
        protocol = DotyEftekhariCounting()
        recorder = EstimateRecorder()
        simulator = Simulator(
            protocol,
            n,
            seed=22,
            adversary=RemoveAllButAt(time=60, keep=keep),
            recorders=[recorder],
        )
        simulator.run(400)
        before = [r.median for r in recorder.rows if r.parallel_time < 60][-1]
        after = recorder.rows[-1].median
        expected_drop = math.log2(n / keep)
        assert before - after >= 0.5 * expected_drop

    def test_resampling_events_emitted_over_time(self):
        from repro.engine.recorder import EventRecorder

        protocol = DotyEftekhariCounting(resample_factor=4)
        events = EventRecorder(kinds={"resample"})
        simulator = Simulator(protocol, 100, seed=23, recorders=[events])
        simulator.run(100)
        assert len(events.events) > 0
