"""BenchSuite / CaseResult: round-trips, provenance, schema versioning."""

from __future__ import annotations

import json

import pytest

from repro.bench.suite import (
    SCHEMA_VERSION,
    BenchSuite,
    CaseResult,
    SchemaVersionError,
    git_metadata,
    load_suite,
    machine_metadata,
)
from repro.engine.errors import ConfigurationError


def make_case(case_id="fig3@quick", seconds=(0.2, 0.3, 0.25), **overrides):
    fields = {
        "case_id": case_id,
        "scenario": "fig3",
        "engine": None,
        "workers": None,
        "effort": "quick",
        "seconds": seconds,
        "work_interactions": 1_000_000,
    }
    fields.update(overrides)
    return CaseResult(**fields)


class TestCaseResult:
    def test_statistics(self):
        case = make_case(seconds=(0.2, 0.3, 0.25))
        assert case.median_seconds == 0.25
        assert case.min_seconds == 0.2
        assert case.interactions_per_second == pytest.approx(1_000_000 / 0.25)

    def test_throughput_without_work_measure(self):
        assert make_case(work_interactions=0).interactions_per_second == 0.0

    def test_empty_samples_rejected(self):
        with pytest.raises(ConfigurationError):
            make_case(seconds=())

    def test_missing_case_id_rejected(self):
        with pytest.raises(ConfigurationError):
            make_case(case_id="")

    def test_dict_round_trip(self):
        case = make_case(extra={"per_point": {"10": 1.5}})
        assert CaseResult.from_dict(case.to_dict()) == case

    def test_compile_seconds_round_trip(self):
        case = make_case(compile_seconds=1.25)
        restored = CaseResult.from_dict(case.to_dict())
        assert restored == case
        assert restored.compile_seconds == 1.25

    def test_negative_compile_seconds_rejected(self):
        with pytest.raises(ConfigurationError):
            make_case(compile_seconds=-1.0)


class TestBenchSuite:
    def test_json_round_trip(self, tmp_path):
        suite = BenchSuite(
            cases=(make_case(), make_case(case_id="fig4@quick", scenario="fig4")),
            effort="quick",
            warmup=1,
            repeats=3,
            calibration_seconds=0.1,
        )
        path = suite.save(tmp_path / "suite.json")
        loaded = load_suite(path)
        assert loaded.to_dict() == suite.to_dict()
        assert loaded.by_case_id().keys() == {"fig3@quick", "fig4@quick"}

    def test_duplicate_case_ids_rejected(self):
        with pytest.raises(ConfigurationError):
            BenchSuite(cases=(make_case(), make_case()))

    def test_machine_and_git_provenance_recorded(self):
        suite = BenchSuite(cases=(make_case(),))
        data = suite.to_dict()
        assert data["machine"]["python"]
        assert data["machine"]["numpy"]
        assert data["machine"]["cpu_count"] >= 1
        assert "commit" in data["git"]
        assert data["schema_version"] == SCHEMA_VERSION
        assert data["kind"] == "repro-bench-suite"

    def test_v1_suite_still_loads(self, tmp_path):
        # Pre-compile_seconds baselines (schema v1) stay comparable: the
        # field was additive, so old files load with compile_seconds=None.
        suite = BenchSuite(cases=(make_case(),))
        data = suite.to_dict()
        data["schema_version"] = 1
        for case in data["cases"]:
            case.pop("compile_seconds", None)
        path = tmp_path / "v1.json"
        path.write_text(json.dumps(data))
        loaded = load_suite(path)
        assert loaded.cases[0].compile_seconds is None
        assert loaded.cases[0].case_id == "fig3@quick"

    def test_schema_version_mismatch_rejected(self, tmp_path):
        suite = BenchSuite(cases=(make_case(),))
        data = suite.to_dict()
        data["schema_version"] = SCHEMA_VERSION + 1
        path = tmp_path / "future.json"
        path.write_text(json.dumps(data))
        with pytest.raises(SchemaVersionError):
            load_suite(path)

    def test_missing_schema_version_rejected(self, tmp_path):
        path = tmp_path / "not_a_suite.json"
        path.write_text(json.dumps({"cases": []}))
        with pytest.raises(SchemaVersionError):
            load_suite(path)

    def test_wrong_kind_rejected(self):
        with pytest.raises(SchemaVersionError):
            BenchSuite.from_dict(
                {"schema_version": SCHEMA_VERSION, "kind": "pytest-benchmark"}
            )

    def test_missing_file_is_a_one_line_error(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no such suite file"):
            load_suite(tmp_path / "absent.json")

    def test_invalid_json_is_a_one_line_error(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            load_suite(path)


def test_machine_metadata_fields():
    meta = machine_metadata()
    assert set(meta) == {"platform", "machine", "python", "numpy", "cpu_count"}


def test_git_metadata_fields():
    meta = git_metadata()
    assert set(meta) == {"commit", "branch", "dirty"}
    # This test runs inside the repository checkout, so the commit resolves.
    assert meta["commit"] is None or len(meta["commit"]) == 40
