"""Unit tests for the counts (multiset) engine and its kernels.

The statistical agreement of the counts engine with the per-agent engines
is covered by ``test_statistical_conformance.py``; this module pins the
mechanics — multiset sampling, weighted quantiles, state packing, resizes,
determinism, and the kernel adapters' bookkeeping.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.engine.counts_engine as counts_engine
from repro.core.counts import DynamicCountingCountsKernel
from repro.core.dynamic_counting import DynamicSizeCounting
from repro.engine.api import quantiles
from repro.engine.counts_engine import (
    GRV_VALUE_CAP,
    CountsSimulator,
    PackedCountsKernel,
    grv_max_pmf,
    merge_counts,
    multiset_sample,
    weighted_quantiles,
)
from repro.engine.errors import ConfigurationError
from repro.engine.registry import make_engine
from repro.engine.rng import RandomSource
from repro.protocols.counts import (
    ApproximateMajorityCountsKernel,
    InfectionEpidemicCountsKernel,
    JuntaElectionCountsKernel,
    MaxEpidemicCountsKernel,
)
from repro.protocols.epidemic import MaxEpidemic

# ------------------------------------------------------------------ sampling


class TestMultisetSample:
    def test_invariants_over_random_draws(self):
        generator = np.random.default_rng(7)
        for _ in range(50):
            counts = generator.integers(0, 40, size=6)
            total = int(counts.sum())
            size = int(generator.integers(0, total + 1))
            drawn = multiset_sample(generator, counts, size)
            assert int(drawn.sum()) == size
            assert (drawn >= 0).all()
            assert (drawn <= counts).all()

    def test_edge_sizes(self):
        generator = np.random.default_rng(0)
        counts = np.array([3, 0, 5], dtype=np.int64)
        assert multiset_sample(generator, counts, 0).tolist() == [0, 0, 0]
        assert multiset_sample(generator, counts, 8).tolist() == [3, 0, 5]

    def test_invalid_sizes_rejected(self):
        generator = np.random.default_rng(0)
        counts = np.array([2, 2], dtype=np.int64)
        with pytest.raises(ValueError):
            multiset_sample(generator, counts, -1)
        with pytest.raises(ValueError):
            multiset_sample(generator, counts, 5)

    def test_large_total_fallback_keeps_invariants(self, monkeypatch):
        """Force the sequential conditional path (normally only hit above
        numpy's 10^9 sampler limit) and check the same invariants hold."""
        monkeypatch.setattr(counts_engine, "_NUMPY_HYPERGEOMETRIC_LIMIT", 16)
        generator = np.random.default_rng(11)
        for _ in range(50):
            counts = generator.integers(0, 30, size=5)
            total = int(counts.sum())
            size = int(generator.integers(0, total + 1))
            drawn = multiset_sample(generator, counts, size)
            assert int(drawn.sum()) == size
            assert (drawn >= 0).all()
            assert (drawn <= counts).all()

    def test_fallback_matches_exact_sampler_in_distribution(self, monkeypatch):
        """The conditional path draws the same marginal distribution as the
        exact sampler (here every operand still fits, so it *is* exact)."""
        counts = np.array([60, 40], dtype=np.int64)
        exact = np.array(
            [
                multiset_sample(np.random.default_rng(s), counts, 20)[0]
                for s in range(300)
            ]
        )
        monkeypatch.setattr(counts_engine, "_NUMPY_HYPERGEOMETRIC_LIMIT", 16)
        fallback = np.array(
            [
                multiset_sample(np.random.default_rng(s), counts, 20)[0]
                for s in range(300)
            ]
        )
        # Hypergeometric mean is size * 60/100 = 12; both paths must agree.
        assert abs(exact.mean() - 12.0) < 0.5
        assert abs(fallback.mean() - 12.0) < 0.5


class TestWeightedQuantiles:
    def test_matches_repeat_based_quantiles(self):
        generator = np.random.default_rng(3)
        for _ in range(40):
            size = int(generator.integers(1, 8))
            values = generator.normal(size=size).round(2)
            weights = generator.integers(0, 9, size=size)
            if weights.sum() == 0:
                weights[0] = 1
            expected = quantiles(np.repeat(values, weights))
            assert weighted_quantiles(values, weights) == expected

    def test_even_total_averages_middle_pair(self):
        assert weighted_quantiles([1.0, 3.0], [1, 1]) == (1.0, 2.0, 3.0)

    def test_zero_weight_values_ignored(self):
        assert weighted_quantiles([99.0, 5.0], [0, 3]) == (5.0, 5.0, 5.0)

    def test_nan_on_occupied_value_poisons_all(self):
        lo, med, hi = weighted_quantiles([float("nan"), 1.0], [2, 2])
        assert np.isnan(lo) and np.isnan(med) and np.isnan(hi)

    def test_nan_on_zero_weight_value_is_harmless(self):
        assert weighted_quantiles([float("nan"), 1.0], [0, 2]) == (1.0, 1.0, 1.0)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            weighted_quantiles([1.0, 2.0], [1])
        with pytest.raises(ValueError):
            weighted_quantiles([1.0], [-1])
        with pytest.raises(ValueError):
            weighted_quantiles([1.0], [0])


class TestGrvMaxPmf:
    def test_sums_to_one_and_nonnegative(self):
        for k in (1, 2, 16, 1024):
            pmf = grv_max_pmf(k)
            assert pmf.shape == (GRV_VALUE_CAP,)
            assert (pmf >= 0).all()
            assert pmf.sum() == pytest.approx(1.0, abs=1e-12)

    def test_matches_closed_form_cdf(self):
        k = 16
        pmf = grv_max_pmf(k)
        for m in (1, 4, 10):
            cdf = pmf[:m].sum()
            assert cdf == pytest.approx((1.0 - 2.0**-m) ** k, abs=1e-12)

    def test_more_samples_shift_mass_up(self):
        values = np.arange(1, GRV_VALUE_CAP + 1)
        assert (grv_max_pmf(64) * values).sum() > (grv_max_pmf(2) * values).sum()

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            grv_max_pmf(0)
        with pytest.raises(ValueError):
            grv_max_pmf(4, cap=0)


# ------------------------------------------------------------------- packing


class ToyKernel(PackedCountsKernel):
    """Minimal packed kernel (identity transition) for packing tests."""

    name = "toy"
    two_way = False
    fields = (("a", 5), ("b", 7))

    def initial_state(self, n, rng):
        columns = {"a": np.zeros(1, np.int64), "b": np.zeros(1, np.int64)}
        return self.state_from_columns(columns, np.array([n], dtype=np.int64))

    def output_values(self, state):
        return state.columns["a"].astype(np.float64)

    def transition(self, u, v, multiplicity, rng):
        return {"a": u["a"], "b": u["b"]}, multiplicity, None, None


class TestPackedKernel:
    def test_pack_unpack_roundtrip(self):
        kernel = ToyKernel()
        generator = np.random.default_rng(5)
        columns = {
            "a": generator.integers(0, 5, size=30),
            "b": generator.integers(0, 7, size=30),
        }
        unpacked = kernel.unpack(kernel.pack(columns))
        assert np.array_equal(unpacked["a"], columns["a"])
        assert np.array_equal(unpacked["b"], columns["b"])

    def test_packing_capacity_guard(self):
        class Overflowing(ToyKernel):
            fields = (("a", 2**40), ("b", 2**40))

        with pytest.raises(ConfigurationError, match="pack"):
            Overflowing()._check_packing()

    def test_state_from_columns_merges_duplicates(self):
        kernel = ToyKernel()
        columns = {
            "a": np.array([1, 1, 2], dtype=np.int64),
            "b": np.array([3, 3, 0], dtype=np.int64),
        }
        state = kernel.state_from_columns(columns, np.array([4, 6, 1], dtype=np.int64))
        assert state.num_states == 2
        assert state.total() == 11
        merged = dict(zip(state.keys.tolist(), state.counts.tolist()))
        assert merged[kernel.pack({"a": [1], "b": [3]})[0]] == 10

    def test_state_from_arrays_accepts_vectorized_planes(self):
        kernel = ToyKernel()
        state = kernel.state_from_arrays(
            {
                "a": np.array([0.0, 1.0, 1.0]),  # float planes are fine if integral
                "b": np.array([2, 2, 2]),
                "ticks": np.zeros(3),  # extra planes are ignored
            }
        )
        assert state.total() == 3
        assert state.num_states == 2

    @pytest.mark.parametrize(
        "arrays,match",
        [
            ({"a": np.zeros(3)}, "missing state plane"),
            ({"a": np.array([0.5, 0, 0]), "b": np.zeros(3)}, "non-integral"),
            ({"a": np.array([9, 0, 0]), "b": np.zeros(3)}, "value range"),
            ({"a": np.zeros(3), "b": np.zeros(2)}, "unequal lengths"),
        ],
    )
    def test_state_from_arrays_validation(self, arrays, match):
        with pytest.raises(ConfigurationError, match=match):
            ToyKernel().state_from_arrays(arrays)

    def test_merge_counts_drops_emptied_rows(self):
        keys = np.array([3, 7], dtype=np.int64)
        counts = np.array([2, 5], dtype=np.int64)
        merged_keys, merged_counts = merge_counts(
            keys, counts, np.array([3, 9], dtype=np.int64), np.array([-2, 1], dtype=np.int64)
        )
        assert merged_keys.tolist() == [7, 9]
        assert merged_counts.tolist() == [5, 1]


# ----------------------------------------------------------------- simulator


class TestCountsSimulatorConstruction:
    def test_rejects_non_kernel_protocol(self):
        with pytest.raises(ConfigurationError):
            CountsSimulator(DynamicSizeCounting(), 100, seed=1)

    def test_rejects_tiny_population_and_bad_sub_batches(self):
        kernel = DynamicCountingCountsKernel()
        with pytest.raises(ConfigurationError):
            CountsSimulator(kernel, 1, seed=1)
        with pytest.raises(ConfigurationError):
            CountsSimulator(kernel, 100, seed=1, sub_batches=0)

    def test_rejects_mismatched_initial_state(self):
        kernel = ApproximateMajorityCountsKernel()
        state = kernel.state_from_opinion_counts(3, 4)
        with pytest.raises(ConfigurationError):
            CountsSimulator(kernel, 100, seed=1, initial_state=state)

    def test_rejects_bad_resize_events(self):
        kernel = DynamicCountingCountsKernel()
        with pytest.raises(ConfigurationError):
            CountsSimulator(kernel, 100, seed=1, resize_schedule=((-1, 50),))
        with pytest.raises(ConfigurationError):
            CountsSimulator(kernel, 100, seed=1, resize_schedule=((3, 1),))


class TestCountsSimulatorRuns:
    def test_population_conserved_and_bookkeeping(self):
        engine = CountsSimulator(DynamicCountingCountsKernel(), 500, seed=9)
        result = engine.run(6)
        assert engine.size == 500
        assert engine.interactions_executed == 6 * 500
        assert engine.outputs().shape == (500,)
        assert all(s.population_size == 500 for s in result.snapshots)
        assert result.metadata["engine"] == "counts"
        assert result.metadata["sub_batches"] == 8
        assert result.metadata["occupied_states"] >= 1
        assert result.metadata["peak_states"] >= result.metadata["occupied_states"]
        assert result.metadata["total_ticks"] >= 0

    def test_identical_seeds_identical_series(self):
        runs = [
            CountsSimulator(DynamicCountingCountsKernel(), 300, seed=21).run(8).series()
            for _ in range(2)
        ]
        assert runs[0] == runs[1]

    def test_distinct_seeds_diverge(self):
        a = CountsSimulator(DynamicCountingCountsKernel(), 300, seed=1).run(8).series()
        b = CountsSimulator(DynamicCountingCountsKernel(), 300, seed=2).run(8).series()
        assert a != b

    def test_estimate_converges_to_log_n(self):
        engine = CountsSimulator(DynamicCountingCountsKernel(), 4096, seed=13)
        result = engine.run(40)
        # The stored maxima chase log2(n * k); with the empirical k=16 and
        # n=4096 that is 16.
        assert abs(result.snapshots[-1].median - 16.0) <= 3.0

    def test_resize_to_shrinks_and_grows(self):
        engine = CountsSimulator(DynamicCountingCountsKernel(), 400, seed=4)
        engine.run(3)
        engine.resize_to(50)
        assert engine.size == 50
        assert (engine.state.counts >= 0).all()
        engine.resize_to(600)
        assert engine.size == 600
        with pytest.raises(ConfigurationError):
            engine.resize_to(1)

    def test_two_way_majority_resolves(self):
        kernel = ApproximateMajorityCountsKernel()
        engine = CountsSimulator(
            kernel, 32, seed=8, initial_state=kernel.state_from_opinion_counts(30, 2)
        )
        result = engine.run(25)
        assert result.snapshots[-1].median == 1.0
        assert engine.size == 32

    def test_two_way_infection_spreads_to_everyone(self):
        kernel = InfectionEpidemicCountsKernel(one_way=False)
        state = kernel.state_from_columns(
            {"infected": np.array([1, 0], dtype=np.int64)},
            np.array([1, 99], dtype=np.int64),
        )
        engine = CountsSimulator(kernel, 100, seed=15, initial_state=state)
        result = engine.run(30)
        assert result.snapshots[-1].minimum == 1.0

    def test_junta_elects_a_nonempty_junta(self):
        engine = CountsSimulator(JuntaElectionCountsKernel(max_level=20), 256, seed=17)
        result = engine.run(30)
        assert result.snapshots[-1].maximum == 1.0

    def test_one_way_epidemic_through_make_engine_initial_arrays(self):
        value = np.zeros(64)
        value[0] = 9.0
        engine = make_engine(
            "counts", MaxEpidemic(one_way=True), 64, seed=6, initial_arrays={"value": value}
        )
        assert isinstance(engine, CountsSimulator)
        result = engine.run(30)
        assert result.snapshots[-1].maximum == 9.0
        assert result.snapshots[-1].minimum == 9.0

    def test_kernel_grow_injects_fresh_agents(self):
        kernel = MaxEpidemicCountsKernel(initial_value=2, one_way=True)
        engine = CountsSimulator(kernel, 50, seed=3)
        engine.resize_to(80)
        assert engine.size == 80
        # The 30 newcomers arrive in the kernel's initial configuration.
        assert weighted_quantiles(
            kernel.output_values(engine.state), engine.state.counts
        )[0] == 2.0


class TestDynamicCountingKernelDetails:
    def test_non_integral_parameters_rejected(self):
        from repro.core.params import ProtocolParameters

        params = ProtocolParameters(
            tau1=4.5, tau2=2, tau3=1, tau_prime=20, grv_samples=8
        )
        with pytest.raises(ConfigurationError):
            DynamicCountingCountsKernel(params)

    def test_initial_state_with_estimate_matches_outputs(self):
        kernel = DynamicCountingCountsKernel()
        state = kernel.initial_state_with_estimate(1000, 60)
        assert state.total() == 1000
        assert kernel.output_values(state).tolist() == [60.0]

    def test_tick_total_accumulates(self):
        kernel = DynamicCountingCountsKernel()
        engine = CountsSimulator(kernel, 2048, seed=19)
        engine.run(15)
        # Most agents reset early on (some instead adopt a neighbour's max
        # before their timer runs out), each reset drawing one GRV tick.
        assert kernel.tick_total() >= 1024

    def test_responder_view_coarsens_the_state_space(self):
        kernel = DynamicCountingCountsKernel()
        engine = CountsSimulator(kernel, 4096, seed=23)
        engine.run(10)
        class_id, columns = kernel.responder_view(engine.state)
        assert class_id.shape[0] == engine.state.num_states
        assert columns is not None
        classes = int(class_id.max()) + 1
        assert classes < engine.state.num_states
        for name in ("max", "last_max", "time"):
            assert columns[name].shape[0] >= classes
