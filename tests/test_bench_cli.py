"""The ``python -m repro.bench`` CLI: run / compare / report, exit codes.

The acceptance contract of the CI perf gate is pinned here: ``compare
--fail-on-regression 25%`` exits nonzero on a suite with an injected >= 25%
slowdown and zero on a neutral re-run of the same baseline.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.bench.cli import main
from repro.bench.suite import BenchSuite, CaseResult, load_suite

REPO_ROOT = Path(__file__).resolve().parent.parent


def make_suite_file(path, times: dict[str, float], calibration=0.1):
    cases = tuple(
        CaseResult(
            case_id=case_id,
            scenario=case_id.split("@")[0],
            seconds=(seconds,) * 3,
            work_interactions=1_000_000,
        )
        for case_id, seconds in times.items()
    )
    return BenchSuite(cases=cases, calibration_seconds=calibration).save(path)


@pytest.fixture
def baseline_file(tmp_path):
    return make_suite_file(
        tmp_path / "baseline.json", {"fig3@quick": 1.0, "fig4@quick": 2.0}
    )


def inject_slowdown(baseline_path, out_path, factor):
    """Copy of a suite file with every case's samples scaled by ``factor``."""
    data = json.loads(Path(baseline_path).read_text())
    for case in data["cases"]:
        case["seconds"] = [s * factor for s in case["seconds"]]
    Path(out_path).write_text(json.dumps(data))
    return out_path


class TestCompareCommand:
    def test_neutral_rerun_exits_zero(self, baseline_file, capsys):
        code = main(
            ["compare", str(baseline_file), str(baseline_file), "--fail-on-regression", "25%"]
        )
        assert code == 0
        assert "neutral" in capsys.readouterr().out

    def test_injected_slowdown_exits_nonzero(self, baseline_file, tmp_path, capsys):
        slow = inject_slowdown(baseline_file, tmp_path / "slow.json", 1.5)
        code = main(
            ["compare", str(baseline_file), str(slow), "--fail-on-regression", "25%"]
        )
        assert code == 1
        captured = capsys.readouterr()
        assert "regression" in captured.out
        assert "FAIL" in captured.err

    def test_exact_threshold_slowdown_is_neutral(self, baseline_file, tmp_path):
        slow = inject_slowdown(baseline_file, tmp_path / "slow.json", 1.25)
        code = main(
            ["compare", str(baseline_file), str(slow), "--fail-on-regression", "25%"]
        )
        assert code == 0

    def test_without_gate_reports_but_exits_zero(self, baseline_file, tmp_path, capsys):
        slow = inject_slowdown(baseline_file, tmp_path / "slow.json", 2.0)
        code = main(["compare", str(baseline_file), str(slow)])
        assert code == 0
        assert "regression" in capsys.readouterr().out

    def test_improvement_never_gates(self, baseline_file, tmp_path):
        fast = inject_slowdown(baseline_file, tmp_path / "fast.json", 0.5)
        code = main(
            ["compare", str(baseline_file), str(fast), "--fail-on-regression", "25%"]
        )
        assert code == 0

    def test_missing_file_is_a_one_line_error(self, baseline_file, tmp_path, capsys):
        code = main(["compare", str(baseline_file), str(tmp_path / "absent.json")])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_schema_mismatch_is_a_one_line_error(self, baseline_file, tmp_path, capsys):
        data = json.loads(Path(baseline_file).read_text())
        data["schema_version"] += 1
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(data))
        code = main(["compare", str(baseline_file), str(bad)])
        assert code == 2
        assert "schema version" in capsys.readouterr().err

    def test_bad_threshold_is_a_usage_error(self, baseline_file):
        with pytest.raises(SystemExit) as excinfo:
            main(["compare", str(baseline_file), str(baseline_file), "--fail-on-regression", "fast"])
        assert excinfo.value.code == 2


class TestReportCommand:
    def test_report_prints_case_table(self, baseline_file, capsys):
        assert main(["report", str(baseline_file)]) == 0
        out = capsys.readouterr().out
        assert "Benchmark suite" in out
        assert "`fig3@quick`" in out

    def test_report_with_baseline_prints_verdicts(self, baseline_file, tmp_path, capsys):
        slow = inject_slowdown(baseline_file, tmp_path / "slow.json", 1.5)
        assert main(["report", str(slow), "--baseline", str(baseline_file)]) == 0
        out = capsys.readouterr().out
        assert "vs committed baseline" in out
        assert "❌ regression" in out


class TestRunCommand:
    def test_run_writes_a_loadable_suite(self, tmp_path, capsys):
        out = tmp_path / "suite.json"
        code = main(
            [
                "run",
                "--scenarios",
                "oscillate",
                "--warmup",
                "0",
                "--repeats",
                "1",
                "--no-calibrate",
                "--output",
                str(out),
            ]
        )
        assert code == 0
        suite = load_suite(out)
        assert [case.case_id for case in suite.cases] == ["oscillate@quick"]
        assert suite.cases[0].median_seconds > 0
        assert suite.cases[0].work_interactions > 0
        assert "oscillate@quick" in capsys.readouterr().out

    def test_run_then_self_compare_is_neutral(self, tmp_path):
        out = tmp_path / "suite.json"
        assert (
            main(
                [
                    "run",
                    "--scenarios",
                    "churn",
                    "--warmup",
                    "0",
                    "--repeats",
                    "1",
                    "--no-calibrate",
                    "--output",
                    str(out),
                ]
            )
            == 0
        )
        assert main(["compare", str(out), str(out), "--fail-on-regression", "25%"]) == 0

    def test_unknown_scenario_is_a_one_line_error(self, tmp_path, capsys):
        code = main(["run", "--scenarios", "nope", "--output", str(tmp_path / "x.json")])
        assert code == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_duplicate_scenario_fails_before_any_run(self, tmp_path, capsys):
        out = tmp_path / "x.json"
        code = main(["run", "--scenarios", "oscillate,oscillate", "--output", str(out)])
        assert code == 2
        assert "duplicate benchmark case" in capsys.readouterr().err
        assert not out.exists()


class TestCommittedBaseline:
    """The CI gate's actual inputs: the committed quick-effort baseline."""

    BASELINE = REPO_ROOT / "benchmarks" / "BENCH_baseline.json"

    def test_baseline_is_a_valid_current_schema_suite(self):
        suite = load_suite(self.BASELINE)
        assert suite.effort == "quick"
        assert suite.calibration_seconds and suite.calibration_seconds > 0
        assert len(suite.cases) >= 10
        assert all(case.median_seconds > 0 for case in suite.cases)

    def test_neutral_rerun_of_the_baseline_exits_zero(self):
        code = main(
            [
                "compare",
                str(self.BASELINE),
                str(self.BASELINE),
                "--fail-on-regression",
                "25%",
            ]
        )
        assert code == 0

    def test_injected_slowdown_against_the_baseline_exits_nonzero(self, tmp_path):
        slow = inject_slowdown(self.BASELINE, tmp_path / "slow.json", 1.5)
        code = main(
            ["compare", str(self.BASELINE), str(slow), "--fail-on-regression", "25%"]
        )
        assert code == 1

    def test_baseline_covers_the_default_grid(self):
        from repro.bench.spec import default_grid

        suite_ids = set(load_suite(self.BASELINE).by_case_id())
        grid_ids = {spec.case_id for spec in default_grid("quick")}
        assert grid_ids <= suite_ids


class TestModuleEntryPoint:
    """The literal CI invocation: ``python -m repro.bench compare ...``."""

    def run_module(self, *args):
        env = dict(os.environ)
        src = str(REPO_ROOT / "src")
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        return subprocess.run(
            [sys.executable, "-m", "repro.bench", *args],
            capture_output=True,
            text=True,
            env=env,
            cwd=REPO_ROOT,
            timeout=120,
        )

    def test_gate_exit_codes(self, baseline_file, tmp_path):
        slow = inject_slowdown(baseline_file, tmp_path / "slow.json", 1.5)
        neutral = self.run_module(
            "compare", str(baseline_file), str(baseline_file), "--fail-on-regression", "25%"
        )
        assert neutral.returncode == 0, neutral.stderr
        regressed = self.run_module(
            "compare", str(baseline_file), str(slow), "--fail-on-regression", "25%"
        )
        assert regressed.returncode == 1, regressed.stderr
        assert "regression" in regressed.stdout
