"""Streaming (constant-memory) metric reduction regression tests.

Pins the documented accuracy contract of :mod:`repro.engine.streaming`:
extrema/counts/means are exact, P² quantiles land within 2.5% of the value
range on a 200k-sample mixture stream, and the bounded row buffer holds
memory constant over horizons 100x beyond its capacity while keeping the
retained rows evenly spaced.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dynamic_counting import DynamicSizeCounting
from repro.engine.errors import ConfigurationError
from repro.engine.recorder import EstimateRecorder
from repro.engine.registry import make_engine
from repro.engine.rng import RandomSource
from repro.engine.streaming import (
    BoundedRowBuffer,
    P2Quantile,
    ReservoirBuffer,
    RunningColumnStats,
    RunningExtrema,
    StreamingEstimateRecorder,
)


def _mixture_stream(size: int = 200_000) -> np.ndarray:
    """A bimodal mixture — deliberately not friendly to quantile trackers."""
    rng = np.random.default_rng(42)
    left = rng.normal(0.0, 1.0, size // 2)
    right = rng.normal(8.0, 2.5, size - size // 2)
    values = np.concatenate([left, right])
    rng.shuffle(values)
    return values


class TestRunningExtrema:
    def test_exact_and_nan_safe(self):
        tracker = RunningExtrema()
        for value in (3.0, float("nan"), -1.5, 7.0, float("nan")):
            tracker.update(value)
        summary = tracker.summary()
        assert summary["count"] == 3.0
        assert summary["nan_count"] == 2.0
        assert summary["minimum"] == -1.5
        assert summary["maximum"] == 7.0

    def test_empty_reports_nan(self):
        summary = RunningExtrema().summary()
        assert summary["minimum"] != summary["minimum"]


class TestP2Quantile:
    def test_rejects_degenerate_probability(self):
        for bad in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ConfigurationError):
                P2Quantile(bad)

    def test_small_samples_are_exact(self):
        probe = P2Quantile(0.5)
        for value in (5.0, 1.0, 3.0):
            probe.update(value)
        assert probe.value() == 3.0

    @pytest.mark.parametrize("p", (0.25, 0.5, 0.75, 0.9))
    def test_mixture_stream_within_documented_tolerance(self, p):
        values = _mixture_stream()
        probe = P2Quantile(p)
        for value in values:
            probe.update(value)
        exact = float(np.quantile(values, p))
        value_range = float(values.max() - values.min())
        assert abs(probe.value() - exact) < 0.025 * value_range

    def test_nan_observations_skipped(self):
        values = [1.0, 2.0, float("nan"), 3.0, 4.0, 5.0, float("nan"), 6.0]
        probe = P2Quantile(0.5)
        for value in values:
            probe.update(value)
        assert 2.0 <= probe.value() <= 5.0


class TestRunningColumnStats:
    def test_mean_and_variance_match_numpy(self):
        values = _mixture_stream(5000)
        stats = RunningColumnStats()
        for value in values:
            stats.update(value)
        summary = stats.summary()
        assert summary["count"] == float(len(values))
        assert summary["mean"] == pytest.approx(float(values.mean()), rel=1e-9)
        assert summary["variance"] == pytest.approx(float(values.var(ddof=1)), rel=1e-9)
        assert summary["minimum"] == float(values.min())
        assert summary["maximum"] == float(values.max())
        assert summary["q0.5"] == pytest.approx(float(np.median(values)), abs=0.2)


class TestReservoirBuffer:
    def test_capacity_bound_and_census(self):
        reservoir = ReservoirBuffer(64, seed=3)
        for value in range(10_000):
            reservoir.push(value)
        assert len(reservoir.items) == 64
        assert reservoir.seen == 10_000

    def test_deterministic_by_seed(self):
        def fill(seed):
            reservoir = ReservoirBuffer(16, seed=seed)
            for value in range(1000):
                reservoir.push(value)
            return reservoir.items

        assert fill(7) == fill(7)
        assert fill(7) != fill(8)


class TestBoundedRowBuffer:
    def test_memory_constant_over_100x_horizon(self):
        capacity = 64
        buffer = BoundedRowBuffer(capacity)
        horizon = capacity * 100
        for index in range(horizon):
            buffer.append(index)
        assert len(buffer) <= capacity
        assert buffer.appended == horizon
        rows = buffer.rows
        # Retained rows are the every-stride-th appends, starting at 0.
        assert rows == list(range(0, buffer.stride * len(rows), buffer.stride))
        assert buffer.stride & (buffer.stride - 1) == 0  # power of two

    def test_no_decimation_below_capacity(self):
        buffer = BoundedRowBuffer(100)
        for index in range(100):
            buffer.append(index)
        assert buffer.rows == list(range(100))
        assert buffer.stride == 1

    def test_capacity_floor(self):
        with pytest.raises(ConfigurationError):
            BoundedRowBuffer(1)


class _EmptyPopulation:
    size = 0

    def states(self):
        return []


class TestStreamingEstimateRecorder:
    def test_recorder_channel_matches_exact_recorder(self):
        exact = EstimateRecorder()
        streaming = StreamingEstimateRecorder(capacity=4096)
        engine = make_engine(
            "sequential",
            DynamicSizeCounting(),
            24,
            rng=RandomSource.from_seed(11),
            recorders=[exact, streaming],
        )
        engine.run(20)
        # Below capacity nothing is decimated: identical rows and series.
        assert streaming.series() == exact.series()
        assert streaming.snapshot_count == len(exact.rows)

    def test_hook_channel_works_on_array_engines(self):
        streaming = StreamingEstimateRecorder(capacity=64)
        engine = make_engine(
            "batched", DynamicSizeCounting(), 64, rng=RandomSource.from_seed(5)
        )
        engine.add_snapshot_hook(streaming)
        result = engine.run(30)
        assert streaming.snapshot_count == len(result.snapshots)
        summary = streaming.summary()
        assert summary["maximum"]["maximum"] == max(
            snapshot.maximum for snapshot in result.snapshots
        )
        assert summary["minimum"]["minimum"] == min(
            snapshot.minimum for snapshot in result.snapshots
        )

    def test_summary_exact_over_decimated_horizon(self):
        streaming = StreamingEstimateRecorder(capacity=16, reservoir=32)
        values = _mixture_stream(5000)
        from repro.engine.api import EngineSnapshot

        for index, value in enumerate(values):
            streaming.observe(
                EngineSnapshot(
                    parallel_time=index,
                    population_size=10,
                    minimum=float(value) - 1.0,
                    median=float(value),
                    maximum=float(value) + 1.0,
                )
            )
        assert len(streaming.rows) <= 16
        assert streaming.snapshot_count == len(values)
        assert streaming.decimation_stride > 1
        summary = streaming.summary()
        # Extrema/mean are exact over the FULL stream despite decimation.
        assert summary["median"]["minimum"] == float(values.min())
        assert summary["median"]["maximum"] == float(values.max())
        assert summary["median"]["mean"] == pytest.approx(float(values.mean()))
        assert streaming.reservoir is not None
        assert len(streaming.reservoir.items) == 32

    def test_empty_population_still_gets_a_row(self):
        streaming = StreamingEstimateRecorder()
        streaming.on_snapshot(3, _EmptyPopulation(), DynamicSizeCounting())
        (row,) = streaming.rows
        assert row.parallel_time == 3
        assert row.median != row.median  # NaN, not a skipped row
        assert streaming.snapshot_count == 1
