"""Smoke tests: every example script runs end to end (scaled down via import).

The examples are user-facing scripts; here we only check that each module
imports and exposes a ``main`` callable, and we execute the cheapest one
fully so that a broken public API surfaces in the test suite and not only
when a user runs the script.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def load_example(path: Path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_examples_directory_has_at_least_three_scenarios(self):
        assert len(EXAMPLE_FILES) >= 3
        assert (EXAMPLES_DIR / "quickstart.py").exists()

    @pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
    def test_example_defines_main(self, path):
        module = load_example(path)
        assert callable(getattr(module, "main", None))

    def test_quickstart_runs_end_to_end(self, capsys):
        module = load_example(EXAMPLES_DIR / "quickstart.py")
        module.main()
        output = capsys.readouterr().out
        assert "Final estimate band" in output
