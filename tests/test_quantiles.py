"""Tests pinning the partition-based snapshot statistics to NumPy semantics.

`quantiles` runs on every snapshot of every engine and `matrix_quantiles` on
every snapshot of the ensemble engine, so both are pinned against the naive
``(min, np.median, max)`` definitions — including NaN propagation and the
even-length median average.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.api import matrix_quantiles, quantiles


class TestQuantiles:
    @pytest.mark.parametrize("length", [1, 2, 3, 4, 7, 10, 101, 1000])
    def test_matches_numpy_median_min_max(self, length):
        rng = np.random.default_rng(length)
        values = rng.normal(size=length)
        minimum, median, maximum = quantiles(values)
        assert minimum == values.min()
        assert median == np.median(values)
        assert maximum == values.max()

    def test_even_length_median_averages_middle_pair(self):
        assert quantiles([4.0, 1.0, 3.0, 2.0]) == (1.0, 2.5, 4.0)

    def test_accepts_integer_sequences(self):
        assert quantiles([5, 1, 3]) == (1.0, 3.0, 5.0)

    @pytest.mark.parametrize("length", [1, 2, 5, 8])
    def test_nan_propagates_to_all_statistics(self, length):
        values = np.arange(length, dtype=float)
        values[length // 2] = np.nan
        assert all(np.isnan(v) for v in quantiles(values))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            quantiles([])

    def test_ties_and_duplicates(self):
        values = np.array([2.0, 2.0, 2.0, 1.0, 3.0])
        assert quantiles(values) == (1.0, 2.0, 3.0)


class TestMatrixQuantiles:
    @pytest.mark.parametrize("columns", [1, 2, 3, 8, 9, 250])
    def test_matches_numpy_row_reductions(self, columns):
        rng = np.random.default_rng(columns)
        matrix = rng.normal(size=(7, columns))
        minima, medians, maxima = matrix_quantiles(matrix)
        assert np.allclose(minima, matrix.min(axis=1))
        assert np.allclose(medians, np.median(matrix, axis=1))
        assert np.allclose(maxima, matrix.max(axis=1))

    def test_nan_rows_report_nan_without_touching_others(self):
        matrix = np.array([[1.0, 2.0, 3.0], [np.nan, 1.0, 2.0]])
        minima, medians, maxima = matrix_quantiles(matrix)
        assert (minima[0], medians[0], maxima[0]) == (1.0, 2.0, 3.0)
        assert np.isnan(minima[1]) and np.isnan(medians[1]) and np.isnan(maxima[1])

    def test_preserves_float32(self):
        matrix = np.ones((3, 4), dtype=np.float32)
        minima, medians, maxima = matrix_quantiles(matrix)
        assert minima.dtype == np.float32
        assert medians.dtype == np.float32

    def test_integer_input_supported(self):
        matrix = np.array([[3, 1, 2], [5, 5, 5]])
        minima, medians, maxima = matrix_quantiles(matrix)
        assert list(minima) == [1, 5]
        assert list(medians) == [2, 5]
        assert list(maxima) == [3, 5]

    def test_rejects_non_matrix_input(self):
        with pytest.raises(ValueError):
            matrix_quantiles(np.ones(5))
        with pytest.raises(ValueError):
            matrix_quantiles(np.empty((3, 0)))
