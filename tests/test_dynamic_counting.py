"""Tests for Algorithm 2 (DynamicSizeCounting) — transition rules and behaviour."""

from __future__ import annotations

import math

import pytest

from repro.core.dynamic_counting import DynamicSizeCounting
from repro.core.params import empirical_parameters, theory_parameters
from repro.core.state import CountingState, Phase
from repro.engine.recorder import EstimateRecorder, EventRecorder
from repro.engine.simulator import Simulator


@pytest.fixture
def protocol() -> DynamicSizeCounting:
    return DynamicSizeCounting(empirical_parameters())


class TestSetup:
    def test_initial_state(self, protocol, rng):
        state = protocol.initial_state(rng)
        assert state.max_value == 1 and state.last_max == 1
        assert state.time == protocol.params.tau1
        assert state.interactions == 0

    def test_make_initial_population(self, protocol, rng):
        population = protocol.make_initial_population(25, rng)
        assert population.size == 25
        with pytest.raises(ValueError):
            protocol.make_initial_population(1, rng)

    def test_make_estimate_population(self, protocol, rng):
        population = protocol.make_estimate_population(10, 60.0, rng)
        assert all(state.effective_max == 60 for state in population.states())
        with pytest.raises(ValueError):
            protocol.make_estimate_population(1, 60.0, rng)

    def test_default_parameters_are_empirical(self):
        assert DynamicSizeCounting().params.tau1 == 6.0

    def test_describe_includes_params(self, protocol):
        assert protocol.describe()["params"]["tau_prime"] == 20.0


class TestResetRules:
    """Lines 2-6 of Algorithm 2."""

    def test_wraparound_reset(self, protocol, make_ctx, event_collector):
        u = CountingState(max_value=10, last_max=10, time=0, interactions=5)
        v = CountingState(max_value=10, last_max=10, time=30, interactions=5)
        u, v = protocol.interact(u, v, make_ctx(sink=event_collector))
        assert "reset" in event_collector.kinds()
        assert u.interactions == 1  # reset to 0, then +1 from the CHVP line
        assert u.last_max == 10  # old max becomes the trailing estimate
        assert u.max_value >= 1  # fresh GRV

    def test_reset_to_exchange_transition(self, protocol, make_ctx, event_collector):
        params = protocol.params
        # u deep in the reset phase, v freshly reset (exchange phase).
        u = CountingState(max_value=10, last_max=10, time=5, interactions=3)
        v = CountingState(max_value=2, last_max=10, time=params.tau1 * 10, interactions=0)
        protocol.interact(u, v, make_ctx(sink=event_collector))
        assert "reset" in event_collector.kinds()

    def test_hold_to_exchange_on_differing_max(self, protocol, make_ctx, event_collector):
        # u in the hold phase, maxima differ -> reset.
        u = CountingState(max_value=10, last_max=10, time=30, interactions=3)
        v = CountingState(max_value=12, last_max=12, time=30, interactions=3)
        protocol.interact(u, v, make_ctx(sink=event_collector))
        assert "reset" in event_collector.kinds()

    def test_no_reset_in_exchange_with_differing_max(self, protocol, make_ctx, event_collector):
        # u in the exchange phase adopts the larger max instead of resetting.
        u = CountingState(max_value=10, last_max=10, time=50, interactions=3)
        v = CountingState(max_value=12, last_max=12, time=60, interactions=3)
        u, v = protocol.interact(u, v, make_ctx(sink=event_collector))
        assert "reset" not in event_collector.kinds()
        assert u.max_value == 12
        assert u.last_max == 12
        assert u.time == pytest.approx(max(protocol.params.tau1 * 12, 60) - 1)

    def test_no_reset_in_hold_with_equal_max(self, protocol, make_ctx, event_collector):
        u = CountingState(max_value=10, last_max=10, time=30, interactions=3)
        v = CountingState(max_value=10, last_max=10, time=30, interactions=3)
        protocol.interact(u, v, make_ctx(sink=event_collector))
        assert event_collector.kinds() == []

    def test_reset_time_uses_old_max_when_larger(self, protocol, make_ctx):
        # Algorithm 2 line 6: time <- tau1 * max(old max, fresh grv).
        u = CountingState(max_value=50, last_max=50, time=0, interactions=5)
        v = CountingState(max_value=50, last_max=50, time=10, interactions=5)
        u, _ = protocol.interact(u, v, make_ctx())
        # The fresh GRV is almost surely < 50, so the countdown is rewound
        # using the old maximum (minus 1 from the CHVP step).
        assert u.time >= protocol.params.tau1 * 50 - 1


class TestBackupRules:
    """Lines 7-10 of Algorithm 2."""

    def test_backup_counter_resets_even_without_adoption(self, protocol, make_ctx):
        params = protocol.params
        threshold = params.backup_threshold(10)
        u = CountingState(max_value=10, last_max=10, time=50, interactions=int(threshold) + 1)
        v = CountingState(max_value=10, last_max=10, time=50, interactions=0)
        u, _ = protocol.interact(u, v, make_ctx())
        # interactions reset to zero (then +1 from the CHVP line).
        assert u.interactions == 1

    def test_backup_adoption_requires_larger_grv(self, protocol, make_ctx, event_collector):
        params = protocol.params
        threshold = params.backup_threshold(1000)
        u = CountingState(max_value=1000, last_max=1000, time=5000, interactions=int(threshold) + 1)
        v = CountingState(max_value=1000, last_max=1000, time=5000, interactions=0)
        u, _ = protocol.interact(u, v, make_ctx(sink=event_collector))
        # A fresh GRV(16) is astronomically unlikely to exceed 1000, so the
        # stored maximum must be unchanged and no backup event emitted.
        assert u.max_value == 1000
        assert "backup" not in event_collector.kinds()


class TestExchangeRules:
    """Lines 11-15 of Algorithm 2."""

    def test_exchange_adopts_larger_max_and_last_max(self, protocol, make_ctx):
        u = CountingState(max_value=8, last_max=3, time=60, interactions=2)
        v = CountingState(max_value=12, last_max=9, time=70, interactions=2)
        u, v = protocol.interact(u, v, make_ctx())
        assert u.max_value == 12
        assert u.last_max == 9  # adopts v's lastMax wholesale (line 12)
        assert v.max_value == 12  # responder unchanged

    def test_last_max_shared_when_maxima_agree(self, protocol, make_ctx):
        u = CountingState(max_value=10, last_max=3, time=50, interactions=2)
        v = CountingState(max_value=10, last_max=9, time=50, interactions=2)
        u, v = protocol.interact(u, v, make_ctx())
        assert u.last_max == 9
        assert v.last_max == 9  # responder state object is not modified, value was already 9

    def test_last_max_not_shared_across_exchange_reset_boundary(self, protocol, make_ctx):
        # u in exchange, v in reset with the same max: line 13 excludes this pair.
        u = CountingState(max_value=10, last_max=3, time=55, interactions=2)
        v = CountingState(max_value=10, last_max=9, time=5, interactions=2)
        u, v = protocol.interact(u, v, make_ctx())
        assert u.last_max == 3

    def test_chvp_time_update(self, protocol, make_ctx):
        u = CountingState(max_value=10, last_max=10, time=30, interactions=0)
        v = CountingState(max_value=10, last_max=10, time=45, interactions=0)
        u, _ = protocol.interact(u, v, make_ctx())
        assert u.time == 44
        assert u.interactions == 1

    def test_responder_never_changes(self, protocol, make_ctx):
        u = CountingState(max_value=8, last_max=3, time=60, interactions=2)
        v = CountingState(max_value=12, last_max=9, time=70, interactions=4)
        v_snapshot = v.as_dict()
        protocol.interact(u, v, make_ctx())
        assert v.as_dict() == v_snapshot


class TestOutputs:
    def test_output_is_effective_max(self, protocol):
        state = CountingState(max_value=9, last_max=13)
        assert protocol.output(state) == 13.0

    def test_output_divides_overestimation_for_theory_params(self):
        protocol = DynamicSizeCounting(theory_parameters(k=2))
        state = CountingState(max_value=600, last_max=1)
        assert protocol.output(state) == 10.0

    def test_phase_of(self, protocol):
        state = CountingState(max_value=10, last_max=10, time=50)
        assert protocol.phase_of(state) is Phase.EXCHANGE

    def test_memory_bits(self, protocol):
        assert protocol.memory_bits(CountingState(max_value=10, last_max=10, time=60)) >= 4


class TestEndToEnd:
    def test_converges_to_constant_factor_estimate(self):
        n = 250
        protocol = DynamicSizeCounting()
        recorder = EstimateRecorder()
        simulator = Simulator(protocol, n, seed=51, recorders=[recorder])
        simulator.run(250)
        final = recorder.rows[-1]
        log_n = math.log2(n)
        assert 0.5 * log_n <= final.minimum
        assert final.maximum <= 4 * log_n
        # All agents agree once converged (single epidemic maximum).
        assert final.maximum - final.minimum <= 2

    def test_reset_events_recur(self):
        protocol = DynamicSizeCounting()
        events = EventRecorder(kinds={"reset"})
        simulator = Simulator(protocol, 120, seed=52, recorders=[events])
        simulator.run(400)
        # Every agent resets roughly once per round; over 400 parallel time
        # with a round length of O(100) there must be several resets each.
        assert len(events.events) > 120
