"""Tests for the sharded parallel execution layer (repro.engine.parallel).

Covers the seed tree, shard planning, the executor, and the wiring through
``TrialRunner`` / ``run_engine_trials`` / ``choose_engine`` /
``run_scenario`` / ``run_sweep`` / the CLI.  The determinism contract —
bit-identical per-trial results across worker counts — has its own golden
regression module (``test_parallel_determinism.py``); here we test the
mechanisms and the API surface.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core.dynamic_counting import DynamicSizeCounting
from repro.engine.errors import ConfigurationError
from repro.engine.parallel import (
    DEFAULT_SHARD_SIZE,
    MAX_AUTO_WORKERS,
    ShardTiming,
    TrialShard,
    execute_shards,
    merge_shard_results,
    plan_shards,
    resolve_workers,
)
from repro.engine.recorder import EstimateRecorder
from repro.engine.registry import choose_engine, make_engine
from repro.engine.rng import SeedTree, spawn_streams
from repro.engine.runner import EnsembleSpec, TrialRunner, run_engine_trials
from repro.engine.simulator import Simulator
from repro.protocols.static_counting import MaxGrvCounting


# ----------------------------------------------------------------- seed tree


class TestSeedTree:
    def test_trial_streams_match_spawn_streams(self):
        """First-level integer children are bit-compatible with the
        historical ``spawn_streams`` derivation (pins the golden outputs)."""
        tree = SeedTree.from_seed(42)
        legacy = spawn_streams(42, 6)
        for trial in range(6):
            a = legacy[trial].integers(0, 10**9, size=16)
            b = tree.trial(trial).generator().integers(0, 10**9, size=16)
            assert a.tolist() == b.tolist()

    def test_streams_helper_matches_trial_addressing(self):
        tree = SeedTree.from_seed(3)
        via_streams = tree.streams(4)
        for trial, generator in enumerate(via_streams):
            direct = tree.trial(trial).generator()
            assert (
                generator.integers(0, 10**6, 8).tolist()
                == direct.integers(0, 10**6, 8).tolist()
            )

    def test_distinct_base_seeds_produce_distinct_streams(self):
        """The respawn-hazard regression: the root entropy is mixed into
        every trial stream, so two runners with the same trial count but
        different base seeds can never reuse streams."""
        a = SeedTree.from_seed(1)
        b = SeedTree.from_seed(2)
        for trial in range(8):
            left = a.trial(trial).generator().integers(0, 10**9, size=16)
            right = b.trial(trial).generator().integers(0, 10**9, size=16)
            assert left.tolist() != right.tolist()

    def test_address_is_independent_of_sibling_count(self):
        """A trial's stream depends on its address only — not on how many
        sibling trials were spawned around it."""
        few = spawn_streams(9, 2)[1].integers(0, 10**9, 8)
        many = spawn_streams(9, 200)[1].integers(0, 10**9, 8)
        assert few.tolist() == many.tolist()

    def test_string_and_int_namespaces_are_disjoint(self):
        tree = SeedTree.from_seed(5)
        named = tree.child("shard", 0)
        indexed = tree.child(0, 0)
        assert named.spawn_key != indexed.spawn_key
        a = named.generator().integers(0, 10**9, 8).tolist()
        b = indexed.generator().integers(0, 10**9, 8).tolist()
        assert a != b

    def test_string_keys_are_stable(self):
        """String keys hash through SHA-256, so the derived stream is a
        fixed function of the key — across processes and sessions."""
        stream = SeedTree.from_seed(0).child("shard").generator()
        assert stream.integers(0, 10**6, 4).tolist() == (
            SeedTree.from_seed(0).child("shard").generator().integers(0, 10**6, 4).tolist()
        )
        # Pinned spawn key: changing the encoding would silently re-seed
        # every sharded ensemble run.
        assert SeedTree.from_seed(0).child("shard").spawn_key == (
            0x9E3779B9,
            3449304543,
            1539043686,
            2076304068,
            2122095592,
        )

    def test_large_and_negative_int_keys_are_hashed(self):
        tree = SeedTree.from_seed(1)
        assert len(tree.child(2**40).spawn_key) > 1
        assert len(tree.child(-1).spawn_key) > 1
        assert tree.child(2**40).spawn_key != tree.child(-1).spawn_key

    def test_rejects_bad_keys(self):
        tree = SeedTree.from_seed(1)
        with pytest.raises(ValueError):
            tree.child(1.5)  # type: ignore[arg-type]
        with pytest.raises(ValueError):
            tree.child(True)  # type: ignore[arg-type]
        with pytest.raises(ValueError):
            tree.trial(-1)

    def test_from_seed_none_materialises_entropy_once(self):
        tree = SeedTree.from_seed(None)
        a = tree.trial(0).generator().integers(0, 10**9, 8)
        b = tree.trial(0).generator().integers(0, 10**9, 8)
        assert a.tolist() == b.tolist()

    def test_from_seed_passes_trees_through(self):
        tree = SeedTree.from_seed(7).child("x")
        assert SeedTree.from_seed(tree) is tree

    def test_nodes_pickle_and_hash(self):
        node = SeedTree.from_seed(11).child("scenario", 3).trial(2)
        clone = pickle.loads(pickle.dumps(node))
        assert clone == node
        assert hash(clone) == hash(node)
        assert (
            clone.generator().integers(0, 10**6, 4).tolist()
            == node.generator().integers(0, 10**6, 4).tolist()
        )


# ------------------------------------------------------------ shard planning


class TestPlanShards:
    def test_tiles_the_trial_range(self):
        for trials in (1, 2, 15, 16, 17, 96, 100):
            shards = plan_shards(trials)
            assert shards[0].start == 0
            assert shards[-1].stop == trials
            for left, right in zip(shards, shards[1:]):
                assert left.stop == right.start

    def test_respects_shard_size_cap(self):
        for trials in (1, 16, 33, 96):
            assert all(s.trials <= DEFAULT_SHARD_SIZE for s in plan_shards(trials))

    def test_balanced_within_one_trial(self):
        for trials in (17, 31, 97):
            sizes = [s.trials for s in plan_shards(trials)]
            assert max(sizes) - min(sizes) <= 1

    def test_layout_is_a_pure_function_of_the_workload(self):
        assert plan_shards(96) == plan_shards(96)
        assert plan_shards(96, shard_size=DEFAULT_SHARD_SIZE) == plan_shards(96)
        assert plan_shards(96, shard_size=2 * DEFAULT_SHARD_SIZE) != plan_shards(96)

    def test_single_trial_single_shard(self):
        assert plan_shards(1) == (TrialShard(index=0, start=0, stop=1),)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            plan_shards(0)
        with pytest.raises(ConfigurationError):
            plan_shards(4, shard_size=0)
        with pytest.raises(ConfigurationError):
            TrialShard(index=0, start=3, stop=3)


class TestResolveWorkers:
    def test_none_passthrough(self):
        assert resolve_workers(None) is None

    def test_integers(self):
        assert resolve_workers(1) == 1
        assert resolve_workers(6) == 6

    def test_auto_is_capped_positive(self):
        resolved = resolve_workers("auto")
        assert 1 <= resolved <= MAX_AUTO_WORKERS

    def test_rejects_bad_values(self):
        for bad in (0, -2, "four", 2.5, True):
            with pytest.raises(ConfigurationError):
                resolve_workers(bad)  # type: ignore[arg-type]


# ---------------------------------------------------------------- executor


def _square_shard(payload):
    """Module-level shard function so the pool can unpickle it."""
    return [value * value for value in payload]


def _failing_shard(payload):
    raise RuntimeError("shard exploded")


class TestExecuteShards:
    def test_serial_and_parallel_agree_in_order(self):
        payloads = [[1, 2], [3], [4, 5, 6]]
        serial, _ = execute_shards(_square_shard, payloads, workers=1)
        parallel, _ = execute_shards(_square_shard, payloads, workers=3)
        assert serial == parallel == [[1, 4], [9], [16, 25, 36]]

    def test_timings_reported_per_shard(self):
        shards = plan_shards(5, shard_size=2)
        payloads = [list(s.trial_indices()) for s in shards]
        _, timings = execute_shards(_square_shard, payloads, workers=1, shards=shards)
        assert [t.shard for t in timings] == [0, 1, 2]
        assert all(t.seconds >= 0.0 for t in timings)
        assert timings[0].as_dict()["trials"] == shards[0].trials

    def test_worker_errors_propagate(self):
        with pytest.raises(RuntimeError, match="shard exploded"):
            execute_shards(_failing_shard, [[1]], workers=1)
        with pytest.raises(RuntimeError, match="shard exploded"):
            execute_shards(_failing_shard, [[1], [2]], workers=2)

    def test_shard_payload_count_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            execute_shards(_square_shard, [[1]], workers=1, shards=plan_shards(5, shard_size=2))


class TestMergeShardResults:
    def test_merge_in_any_order(self):
        shards = plan_shards(7, shard_size=3)
        per_shard = [[f"t{t}" for t in s.trial_indices()] for s in shards]
        expected = [f"t{t}" for t in range(7)]
        assert merge_shard_results(shards, per_shard) == expected
        reordered = list(zip(shards, per_shard))[::-1]
        assert merge_shard_results(
            [s for s, _ in reordered], [r for _, r in reordered]
        ) == expected

    def test_rejects_gaps_overlaps_and_bad_counts(self):
        shards = plan_shards(4, shard_size=2)
        with pytest.raises(ConfigurationError):
            merge_shard_results(shards, [["a", "b"]])
        with pytest.raises(ConfigurationError):
            merge_shard_results(shards, [["a", "b"], ["c"]])
        gappy = (shards[0], TrialShard(index=1, start=3, stop=4))
        with pytest.raises(ConfigurationError):
            merge_shard_results(gappy, [["a", "b"], ["c"]])
        with pytest.raises(ConfigurationError):
            merge_shard_results(
                (TrialShard(index=0, start=1, stop=3),), [["a", "b"]]
            )


# ------------------------------------------------------------- TrialRunner


def _picklable_trial(trial_index, rng):
    """Module-level trial function so that worker processes can unpickle it."""
    recorder = EstimateRecorder()
    simulator = Simulator(MaxGrvCounting(), 30, rng=rng, recorders=[recorder])
    result = simulator.run(10)
    series = recorder.series()
    return result, {"maximum": series["maximum"]}


class TestTrialRunnerWorkers:
    def test_workers_none_matches_legacy_serial(self):
        legacy = TrialRunner(_picklable_trial, trials=4, seed=11).run()
        sharded = TrialRunner(_picklable_trial, trials=4, seed=11, workers=1).run()
        assert [o.data for o in legacy] == [o.data for o in sharded]

    def test_worker_counts_are_bit_identical(self):
        one = TrialRunner(_picklable_trial, trials=5, seed=11, workers=1).run()
        three = TrialRunner(_picklable_trial, trials=5, seed=11, workers=3).run()
        assert [o.trial for o in three] == [0, 1, 2, 3, 4]
        assert [o.data for o in one] == [o.data for o in three]

    def test_processes_alias_still_works(self):
        alias = TrialRunner(_picklable_trial, trials=3, seed=7, processes=2).run()
        direct = TrialRunner(_picklable_trial, trials=3, seed=7, workers=2).run()
        assert [o.data for o in alias] == [o.data for o in direct]

    def test_distinct_base_seeds_produce_distinct_streams(self):
        """Respawn-hazard regression at the runner level: same trial count,
        different base seeds, no stream reuse anywhere."""
        first = TrialRunner(_picklable_trial, trials=3, seed=100, workers=2).run()
        second = TrialRunner(_picklable_trial, trials=3, seed=200, workers=2).run()
        for left, right in zip(first, second):
            assert left.data["maximum"] != right.data["maximum"]

    def test_shard_timings_recorded(self):
        runner = TrialRunner(_picklable_trial, trials=4, seed=1, workers=2)
        runner.run()
        assert len(runner.shard_timings) == 1  # 4 trials fit one shard
        assert runner.shard_timings[0].stop == 4

    def test_ensemble_sharded_matches_across_worker_counts(self):
        spec = EnsembleSpec(protocol=DynamicSizeCounting(), n=150, parallel_time=6)
        one = TrialRunner(trials=20, seed=9, ensemble=spec, workers=1).run()
        four = TrialRunner(trials=20, seed=9, ensemble=spec, workers=4).run()
        assert [o.trial for o in four] == list(range(20))
        for left, right in zip(one, four):
            assert left.data == right.data

    def test_ensemble_sharded_splits_the_stack(self):
        spec = EnsembleSpec(protocol=DynamicSizeCounting(), n=100, parallel_time=4)
        runner = TrialRunner(trials=20, seed=9, ensemble=spec, workers=1)
        runner.run()
        assert [t.stop - t.start for t in runner.shard_timings] == [7, 7, 6]

    def test_ensemble_data_fn_applied_in_parent(self):
        spec = EnsembleSpec(
            protocol=DynamicSizeCounting(),
            n=60,
            parallel_time=4,
            # A lambda is deliberately non-picklable: it must never cross
            # the process boundary.  18 trials span multiple shards, so
            # workers=2 genuinely ships payloads through the pool.
            data_fn=lambda result: {"final": result.snapshots[-1].median},
        )
        outcomes = TrialRunner(trials=18, seed=3, ensemble=spec, workers=2).run()
        assert len(outcomes) == 18
        assert all("final" in o.data for o in outcomes)

    def test_ensemble_per_trial_initial_arrays_sliced_per_shard(self):
        """A 2-D (trials, n) initial state must land row-by-row in the
        right trial regardless of shard boundaries or worker count."""
        import numpy as np

        from repro.core.vectorized import VectorizedDynamicCounting

        trials, n = 18, 40
        vectorized = VectorizedDynamicCounting()
        base = vectorized.initial_arrays_with_estimate(n, 12.0)
        # Give every trial a distinct initial estimate plane.
        stacked = {
            key: np.stack(
                [np.asarray(value) + (0.5 * t if key == "max" else 0.0)
                 for t in range(trials)]
            )
            for key, value in base.items()
        }
        spec = EnsembleSpec(
            protocol=vectorized,
            n=n,
            parallel_time=3,
            initial_arrays=stacked,
        )
        serial = TrialRunner(trials=trials, seed=5, ensemble=spec, workers=1).run()
        pooled = TrialRunner(trials=trials, seed=5, ensemble=spec, workers=3).run()
        assert [o.data for o in serial] == [o.data for o in pooled]
        # The per-trial planes really differ, so a mis-sliced shard would
        # show up as shifted starting estimates.
        first_points = [o.data["maximum"][0] for o in serial]
        assert len(set(first_points)) > 1

    def test_rejects_bad_workers(self):
        with pytest.raises(ConfigurationError):
            TrialRunner(_picklable_trial, trials=2, workers=0)
        with pytest.raises(ConfigurationError):
            TrialRunner(_picklable_trial, trials=2, workers="many")


# -------------------------------------------------------- run_engine_trials


def _counting_engine_factory(engine_name, rng, ensemble_trials):
    """Module-level factory so the sharded path can pickle it."""
    return make_engine(
        engine_name,
        DynamicSizeCounting(),
        50,
        rng=rng,
        trials=ensemble_trials if engine_name == "ensemble" else None,
    )


class TestRunEngineTrialsWorkers:
    @pytest.mark.parametrize("engine", ["sequential", "array", "batched"])
    def test_looped_engines_sharded_equals_serial(self, engine):
        serial = run_engine_trials(
            _counting_engine_factory, engine=engine, trials=3, seed=5, parallel_time=5
        )
        for workers in (1, 2):
            sharded = run_engine_trials(
                _counting_engine_factory,
                engine=engine,
                trials=3,
                seed=5,
                parallel_time=5,
                workers=workers,
            )
            assert sharded == serial

    def test_ensemble_sharded_consistent_across_worker_counts(self):
        results = {}
        for workers in (1, 2, 4):
            results[workers] = run_engine_trials(
                _counting_engine_factory,
                engine="ensemble",
                trials=20,
                seed=5,
                parallel_time=5,
                workers=workers,
            )
        assert results[1] == results[2] == results[4]
        assert len(results[1]) == 20

    def test_timing_sink_receives_shards(self):
        sink: list[ShardTiming] = []
        run_engine_trials(
            _counting_engine_factory,
            engine="array",
            trials=5,
            seed=5,
            parallel_time=3,
            workers=1,
            timing_sink=sink,
        )
        assert len(sink) == 1
        assert sink[0].stop == 5

    def test_workers_auto_accepted(self):
        series = run_engine_trials(
            _counting_engine_factory,
            engine="array",
            trials=2,
            seed=5,
            parallel_time=3,
            workers="auto",
        )
        assert len(series) == 2


# ---------------------------------------------------- shard-aware selection


class TestChooseEngineShardAware:
    def test_multi_trial_shards_still_prefer_ensemble(self):
        protocol = DynamicSizeCounting()
        assert choose_engine(protocol, 96, 10_000, workers=4) == "ensemble"

    def test_single_trial_prefers_batched_regardless(self):
        protocol = DynamicSizeCounting()
        assert choose_engine(protocol, 1, 10_000) == "batched"
        assert choose_engine(protocol, 1, 10_000, workers=4) == "batched"

    def test_selection_depends_on_shard_layout_not_worker_count(self):
        protocol = DynamicSizeCounting()
        for workers in (1, 2, 8):
            assert choose_engine(protocol, 96, 10_000, workers=workers) == "ensemble"

    def test_small_population_still_exact(self):
        assert choose_engine(DynamicSizeCounting(), 96, 64, workers=4) == "array"

    def test_rejects_bad_workers(self):
        with pytest.raises(ConfigurationError):
            choose_engine(DynamicSizeCounting(), 4, 100, workers=0)


# ----------------------------------------------------- scenarios and sweeps


class TestScenarioWorkers:
    def test_run_scenario_bit_identical_across_worker_counts(self):
        from repro.scenarios import run_scenario

        results = {
            workers: run_scenario("fig3", effort="quick", workers=workers)
            for workers in (1, 2)
        }
        assert results[1].rows == results[2].rows
        assert results[1].series == results[2].series
        assert results[1].metadata["workers"] == 1
        assert results[2].metadata["workers"] == 2

    def test_run_scenario_serial_unchanged_for_looped_engines(self):
        from repro.scenarios import run_scenario

        serial = run_scenario("fig3", effort="quick")
        sharded = run_scenario("fig3", effort="quick", workers=2)
        # fig3 pins the batched engine (looped), so the sharded path must
        # reproduce the serial rows bit for bit.
        assert sharded.rows == serial.rows
        assert "workers" not in serial.metadata

    def test_shard_timings_in_metadata(self):
        from repro.scenarios import run_scenario

        result = run_scenario("fig3", effort="quick", workers=2)
        timings = result.metadata["shard_timings"]
        assert timings
        for shards in timings.values():
            assert all(entry["seconds"] >= 0.0 for entry in shards)

    def test_executor_scenarios_stay_serial(self):
        from repro.scenarios import run_scenario

        result = run_scenario("memory", effort="quick", workers=2)
        assert result.metadata["workers"] == "serial-only (bespoke executor)"

    def test_rejects_bad_workers_before_running(self):
        from repro.scenarios import run_scenario

        with pytest.raises(ConfigurationError):
            run_scenario("fig3", effort="quick", workers=0)

    def test_run_sweep_bit_identical_across_worker_counts(self):
        from repro.scenarios import run_sweep
        from repro.scenarios.spec import SweepSpec

        sweep = SweepSpec.from_mapping("fig4", {"keep": (50, 100)})
        by_workers = {
            workers: run_sweep(sweep, effort="quick", workers=workers)
            for workers in (1, 2)
        }
        labels_1 = [label for label, _ in by_workers[1]]
        labels_2 = [label for label, _ in by_workers[2]]
        assert labels_1 == labels_2 == ["keep=50", "keep=100"]
        for (_, left), (_, right) in zip(by_workers[1], by_workers[2]):
            assert left.rows == right.rows
            assert left.metadata["sweep"] == right.metadata["sweep"]
            assert right.metadata["sweep_seconds"] >= 0.0

    def test_run_sweep_serial_unchanged(self):
        from repro.scenarios import run_sweep
        from repro.scenarios.spec import SweepSpec

        sweep = SweepSpec.from_mapping("fig4", {"keep": (50, 100)})
        legacy = run_sweep(sweep, effort="quick")
        sharded = run_sweep(sweep, effort="quick", workers=2)
        for (_, left), (_, right) in zip(legacy, sharded):
            assert left.rows == right.rows


# ------------------------------------------------------------------- CLI


class TestCliWorkers:
    def test_run_accepts_workers_and_prints_shard_timing(self, capsys):
        from repro.experiments.cli import main

        assert main(["run", "fig3", "--effort", "quick", "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "shard(s)" in out
        assert "workers=2" in out

    def test_workers_auto_accepted(self, capsys):
        from repro.experiments.cli import main

        assert main(["run", "fig3", "--effort", "quick", "--workers", "auto"]) == 0

    def test_bad_workers_rejected(self, capsys):
        from repro.experiments.cli import main

        with pytest.raises(SystemExit):
            main(["run", "fig3", "--workers", "0"])
        with pytest.raises(SystemExit):
            main(["run", "fig3", "--workers", "lots"])

    def test_list_shows_sharding_capability(self, capsys):
        from repro.experiments.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "workers: trial-shards" in out
        assert "workers: serial-only" in out

    def test_sweep_accepts_workers(self, capsys):
        from repro.experiments.cli import main

        assert (
            main(
                [
                    "sweep",
                    "fig4",
                    "--effort",
                    "quick",
                    "--set",
                    "keep=50,100",
                    "--workers",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "point ran in" in out
