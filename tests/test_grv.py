"""Tests for GRV generation (Algorithm 3) and synthetic coins."""

from __future__ import annotations

import math

import pytest

from repro.core.grv import SyntheticCoinGrvGenerator, grv, grv_maximum
from repro.engine.rng import RandomSource


class TestDirectGeneration:
    def test_grv_support(self, rng):
        samples = [grv(rng) for _ in range(1000)]
        assert min(samples) >= 1

    def test_grv_maximum_requires_positive_k(self, rng):
        with pytest.raises(ValueError):
            grv_maximum(rng, 0)

    def test_grv_maximum_at_least_one(self, rng):
        assert all(grv_maximum(rng, 3) >= 1 for _ in range(50))

    def test_grv_maximum_concentration(self, rng):
        """The mean of max-of-k GRVs grows like log2(k) (Lemma 4.1 flavour)."""
        k = 256
        samples = [grv_maximum(rng, k) for _ in range(300)]
        mean = sum(samples) / len(samples)
        assert math.log2(k) - 1.5 <= mean <= math.log2(k) + 3.5


class TestSyntheticCoins:
    def test_invalid_k(self):
        with pytest.raises(ValueError):
            SyntheticCoinGrvGenerator(k=0)

    def test_not_ready_initially(self):
        generator = SyntheticCoinGrvGenerator(k=1)
        assert not generator.ready
        with pytest.raises(RuntimeError):
            _ = generator.value

    def test_single_sample_all_tails(self):
        generator = SyntheticCoinGrvGenerator(k=1)
        result = generator.feed(False)  # immediate tails -> run length 1
        assert result == 1
        assert generator.ready
        assert generator.value == 1

    def test_single_sample_with_heads_run(self):
        generator = SyntheticCoinGrvGenerator(k=1)
        assert generator.feed(True) is None
        assert generator.feed(True) is None
        assert generator.feed(False) == 3  # two heads + terminating tails

    def test_maximum_over_multiple_samples(self):
        generator = SyntheticCoinGrvGenerator(k=3)
        # Sample 1: length 1, sample 2: length 4, sample 3: length 2.
        coins = [False, True, True, True, False, True, False]
        results = [generator.feed(coin) for coin in coins]
        assert results[-1] == 4
        assert all(r is None for r in results[:-1])

    def test_feed_after_completion_is_noop(self):
        generator = SyntheticCoinGrvGenerator(k=1)
        generator.feed(False)
        assert generator.feed(False) is None
        assert generator.value == 1

    def test_reset_allows_reuse(self):
        generator = SyntheticCoinGrvGenerator(k=1)
        generator.feed(False)
        generator.reset()
        assert not generator.ready
        assert generator.feed(False) == 1

    def test_matches_direct_generation_distribution(self):
        """Synthetic-coin generation has the same distribution as Algorithm 3."""
        rng = RandomSource.from_seed(99)
        synthetic_samples = []
        for _ in range(400):
            generator = SyntheticCoinGrvGenerator(k=4)
            while not generator.ready:
                generator.feed(rng.coin())
            synthetic_samples.append(generator.value)
        direct_rng = RandomSource.from_seed(77)
        direct_samples = [grv_maximum(direct_rng, 4) for _ in range(400)]
        synthetic_mean = sum(synthetic_samples) / len(synthetic_samples)
        direct_mean = sum(direct_samples) / len(direct_samples)
        assert abs(synthetic_mean - direct_mean) < 0.6
