"""Markdown report rendering for suites and comparisons."""

from __future__ import annotations

from repro.bench.compare import compare_suites
from repro.bench.report import markdown_comparison, markdown_report
from repro.bench.suite import BenchSuite, CaseResult


def make_suite(times: dict[str, float], calibration=0.1):
    cases = tuple(
        CaseResult(
            case_id=case_id,
            scenario=case_id.split("@")[0],
            seconds=(seconds,) * 3,
            work_interactions=2_000_000,
        )
        for case_id, seconds in times.items()
    )
    return BenchSuite(cases=cases, calibration_seconds=calibration)


class TestMarkdownReport:
    def test_one_row_per_case(self):
        suite = make_suite({"fig3@quick": 1.0, "fig4@quick": 0.5})
        text = markdown_report(suite)
        assert "| `fig3@quick` | 1.00s |" in text
        assert "| `fig4@quick` | 500ms |" in text

    def test_header_carries_run_knobs(self):
        text = markdown_report(make_suite({"fig3@quick": 1.0}))
        assert "effort `quick`" in text
        assert "repeats 3" in text
        assert "calibration 100ms" in text

    def test_throughput_column(self):
        text = markdown_report(make_suite({"fig3@quick": 1.0}))
        assert "2.0M/s" in text

    def test_git_provenance_footer(self):
        suite = make_suite({"fig3@quick": 1.0})
        text = markdown_report(suite)
        commit = suite.git.get("commit")
        if commit:
            assert commit[:12] in text


class TestMarkdownComparison:
    def test_verdict_rows(self):
        baseline = make_suite({"same@quick": 1.0, "slow@quick": 1.0, "fast@quick": 1.0})
        current = make_suite({"same@quick": 1.0, "slow@quick": 2.0, "fast@quick": 0.4})
        text = markdown_comparison(compare_suites(baseline, current))
        assert "| `slow@quick` | 1.00s | 2.00s | +100% | ❌ regression |" in text
        assert "✅ improvement" in text
        assert "· neutral" in text

    def test_regression_callout(self):
        baseline = make_suite({"slow@quick": 1.0})
        current = make_suite({"slow@quick": 2.0})
        text = markdown_comparison(compare_suites(baseline, current))
        assert "**Regressions detected:** `slow@quick`" in text

    def test_added_and_removed_rows(self):
        baseline = make_suite({"old@quick": 1.0, "keep@quick": 1.0})
        current = make_suite({"new@quick": 1.0, "keep@quick": 1.0})
        text = markdown_comparison(compare_suites(baseline, current))
        assert "➕ added" in text
        assert "➖ removed" in text
        assert "—" in text  # one-sided rows have no delta

    def test_header_carries_thresholds(self):
        baseline = make_suite({"a@quick": 1.0})
        text = markdown_comparison(compare_suites(baseline, baseline, threshold=0.25))
        assert "threshold ±25%" in text
        assert "calibration scale 1.00x" in text
