"""Tests for junta election."""

from __future__ import annotations

import math

import pytest

from repro.engine.simulator import Simulator
from repro.protocols.junta import JuntaElection, JuntaState


class TestJuntaRule:
    def test_initial_state(self, rng):
        state = JuntaElection().initial_state(rng)
        assert state.level == 0 and state.climbing and state.max_seen_level == 0

    def test_max_level_spreads_both_ways(self, make_ctx):
        protocol = JuntaElection()
        u = JuntaState(level=2, climbing=False, max_seen_level=2)
        v = JuntaState(level=0, climbing=False, max_seen_level=5)
        u, v = protocol.interact(u, v, make_ctx())
        assert u.max_seen_level == 5
        assert v.max_seen_level == 5

    def test_level_cap(self, make_ctx):
        protocol = JuntaElection(max_level=3)
        state = JuntaState(level=3, climbing=True)
        other = JuntaState(climbing=False)
        for _ in range(30):
            state, other = protocol.interact(state, other, make_ctx())
        assert state.level <= 3

    def test_invalid_max_level(self):
        with pytest.raises(ValueError):
            JuntaElection(max_level=0)

    def test_output_true_only_on_top_level(self):
        protocol = JuntaElection()
        member = JuntaState(level=4, climbing=False, max_seen_level=4)
        loser = JuntaState(level=2, climbing=False, max_seen_level=4)
        climber = JuntaState(level=4, climbing=True, max_seen_level=4)
        assert protocol.output(member)
        assert not protocol.output(loser)
        assert not protocol.output(climber)

    def test_state_copy_is_independent(self):
        state = JuntaState(level=2, climbing=False, max_seen_level=3)
        clone = state.copy()
        clone.level = 9
        assert state.level == 2

    def test_memory_bits(self):
        protocol = JuntaElection()
        assert protocol.memory_bits(JuntaState(level=7, max_seen_level=7)) >= 6


class TestJuntaSimulation:
    def test_junta_is_small_but_nonempty(self):
        n = 200
        protocol = JuntaElection()
        simulator = Simulator(protocol, n, seed=10)
        simulator.run(150)
        junta = sum(1 for s in simulator.states() if protocol.output(s))
        # The junta consists of the agents on the maximum coin level: w.h.p.
        # non-empty and far smaller than n (expected size is O(polylog n)).
        assert 1 <= junta <= n // 4

    def test_all_agents_agree_on_max_level(self):
        protocol = JuntaElection()
        simulator = Simulator(protocol, 100, seed=11)
        simulator.run(120)
        seen = {s.max_seen_level for s in simulator.states()}
        assert len(seen) == 1
        top = seen.pop()
        assert top >= 1
        # The maximum level is log2(n) + O(1) w.h.p.; allow a wide band.
        assert top <= 4 * math.log2(100)
