"""BenchSpec validation, case ids, and the registry-derived grid."""

from __future__ import annotations

import pytest

from repro.bench.spec import (
    ENGINE_AXIS,
    JIT_AXIS,
    WORKER_AXIS,
    BenchSpec,
    default_grid,
    nominal_work,
)
from repro.engine.errors import ConfigurationError
from repro.scenarios.registry import register, scenario_names, unregister
from repro.scenarios.spec import ScenarioSpec


class TestBenchSpec:
    def test_case_id_defaults(self):
        assert BenchSpec("fig3").case_id == "fig3@quick"

    def test_case_id_with_axes(self):
        spec = BenchSpec("fig3", engine="ensemble", workers=2, effort="default")
        assert spec.case_id == "fig3[engine=ensemble,workers=2]@default"

    def test_case_id_single_axis(self):
        assert BenchSpec("fig3", workers=4).case_id == "fig3[workers=4]@quick"
        assert BenchSpec("fig3", engine="auto").case_id == "fig3[engine=auto]@quick"

    def test_case_id_jit_axis_is_appended_last(self):
        spec = BenchSpec("fig3", engine="batched", jit=True)
        assert spec.case_id == "fig3[engine=batched,jit=on]@quick"
        spec = BenchSpec("fig3", engine="ensemble", workers=2, jit=True)
        assert spec.case_id == "fig3[engine=ensemble,workers=2,jit=on]@quick"

    def test_jit_off_leaves_case_id_unchanged(self):
        assert BenchSpec("fig3", jit=False).case_id == "fig3@quick"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError):
            BenchSpec("fig3", engine="warp-drive")

    def test_auto_engine_accepted(self):
        assert BenchSpec("fig3", engine="auto").engine == "auto"

    def test_bad_workers_rejected(self):
        with pytest.raises(ConfigurationError):
            BenchSpec("fig3", workers=0)

    def test_bad_effort_rejected(self):
        with pytest.raises(ConfigurationError):
            BenchSpec("fig3", effort="heroic")

    def test_empty_scenario_rejected(self):
        with pytest.raises(ConfigurationError):
            BenchSpec("")


class TestDefaultGrid:
    def test_covers_every_registered_scenario(self):
        grid = default_grid("quick")
        covered = {spec.scenario for spec in grid}
        assert covered == set(scenario_names())

    def test_case_ids_are_unique(self):
        grid = default_grid("quick")
        ids = [spec.case_id for spec in grid]
        assert len(ids) == len(set(ids))

    def test_engine_and_worker_axes_present(self):
        ids = {spec.case_id for spec in default_grid("quick")}
        for scenario, engines in ENGINE_AXIS.items():
            for engine in engines:
                assert f"{scenario}[engine={engine}]@quick" in ids
        for scenario, workers in WORKER_AXIS.items():
            for count in workers:
                assert f"{scenario}[workers={count}]@quick" in ids

    def test_jit_axis_present(self):
        ids = {spec.case_id for spec in default_grid("quick")}
        for scenario, engines in JIT_AXIS.items():
            for engine in engines:
                assert f"{scenario}[engine={engine},jit=on]@quick" in ids

    def test_scenario_filter(self):
        grid = default_grid("quick", scenarios=["oscillate"])
        assert [spec.case_id for spec in grid] == ["oscillate@quick"]

    def test_unknown_scenario_in_filter_fails_fast(self):
        with pytest.raises(ConfigurationError):
            default_grid("quick", scenarios=["nope"])

    def test_unknown_effort_rejected(self):
        with pytest.raises(ConfigurationError):
            default_grid("overnight")

    def test_explicitly_named_scenario_without_effort_fails_fast(self):
        spec = ScenarioSpec(
            name="grid_probe_explicit",
            description="no presets registered",
            metrics=(lambda trace, point, preset, params: {"n": point.n},),
        )
        register(spec)
        try:
            with pytest.raises(ConfigurationError, match="no 'quick' preset"):
                default_grid("quick", scenarios=["grid_probe_explicit"])
        finally:
            unregister("grid_probe_explicit")

    def test_new_scenario_is_benchable_for_free(self):
        # A freshly registered scenario that resolves presets (here by
        # borrowing fig3's preset family via experiment_id) appears in the
        # grid with no benchmark-side change.
        spec = ScenarioSpec(
            name="grid_probe_scenario",
            description="registry-derived grid probe",
            metrics=(lambda trace, point, preset, params: {"n": point.n},),
            experiment_id="fig3",
        )
        register(spec)
        try:
            ids = {s.case_id for s in default_grid("quick")}
            assert "grid_probe_scenario@quick" in ids
        finally:
            unregister("grid_probe_scenario")

    def test_scenario_without_presets_is_skipped(self):
        spec = ScenarioSpec(
            name="grid_probe_no_presets",
            description="no presets registered",
            metrics=(lambda trace, point, preset, params: {"n": point.n},),
        )
        register(spec)
        try:
            grid = default_grid("quick")
            assert all(s.scenario != "grid_probe_no_presets" for s in grid)
        finally:
            unregister("grid_probe_no_presets")


class TestNominalWork:
    def test_fig3_matches_preset_points(self):
        from repro.experiments.config import PRESETS

        preset = PRESETS["fig3"]["quick"]
        expected = sum(
            n * preset.parallel_time * preset.trials for n in preset.population_sizes
        )
        assert nominal_work(BenchSpec("fig3")) == expected

    def test_executor_scenarios_report_work(self):
        # Bespoke-executor scenarios (recorder workloads) approximate from
        # the preset knobs instead of expanded points.
        assert nominal_work(BenchSpec("memory")) > 0

    def test_every_grid_case_has_work(self):
        for spec in default_grid("quick"):
            assert nominal_work(spec) > 0, spec.case_id
