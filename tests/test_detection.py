"""Tests for the robust detection protocol."""

from __future__ import annotations

import pytest

from repro.engine.population import Population
from repro.engine.simulator import Simulator
from repro.protocols.detection import DetectionProtocol, DetectionState


class TestDetectionRule:
    def test_both_non_sources_adopt_joint_minimum(self, make_ctx):
        protocol = DetectionProtocol()
        u, v = protocol.interact(DetectionState(3), DetectionState(7), make_ctx())
        assert u.value == 4
        assert v.value == 4

    def test_source_stays_at_zero(self, make_ctx):
        protocol = DetectionProtocol()
        source = DetectionState(0, is_source=True)
        other = DetectionState(9)
        u, v = protocol.interact(source, other, make_ctx())
        assert u.value == 0
        assert v.value == 1  # min(0 + 1, 9 + 1)

    def test_state_copy(self):
        state = DetectionState(4, is_source=True)
        clone = state.copy()
        clone.value = 9
        assert state.value == 4

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            DetectionProtocol(threshold=-1)
        with pytest.raises(ValueError):
            DetectionProtocol(source_fraction=1.5)

    def test_output_thresholding(self):
        protocol = DetectionProtocol(threshold=5)
        assert protocol.output(DetectionState(3)) is True
        assert protocol.output(DetectionState(9)) is False
        assert protocol.detects_absence(DetectionState(9)) is True
        assert protocol.output(DetectionState(9, is_source=True)) is True

    def test_memory_bits(self):
        protocol = DetectionProtocol()
        assert protocol.memory_bits(DetectionState(0)) == 2
        assert protocol.memory_bits(DetectionState(255)) == 9

    def test_source_fraction_sampling(self, rng):
        protocol = DetectionProtocol(source_fraction=1.0)
        assert protocol.initial_state(rng).is_source
        protocol = DetectionProtocol(source_fraction=0.0)
        assert not protocol.initial_state(rng).is_source


class TestDetectionSimulation:
    @staticmethod
    def _population(n: int, sources: int) -> Population:
        states = [DetectionState(0, is_source=i < sources) for i in range(n)]
        return Population(states)

    def test_with_source_values_stay_low(self):
        n = 80
        protocol = DetectionProtocol(threshold=30)
        simulator = Simulator(protocol, self._population(n, sources=1), seed=4)
        simulator.run(60)
        non_source_values = [s.value for s in simulator.states() if not s.is_source]
        # With a source present the values are repeatedly dragged down: all
        # agents should remain well below Omega(log n)-scale thresholds.
        assert max(non_source_values) <= 30

    def test_without_source_values_grow(self):
        n = 80
        protocol = DetectionProtocol(threshold=30)
        simulator = Simulator(protocol, self._population(n, sources=0), seed=4)
        simulator.run(60)
        values = [s.value for s in simulator.states()]
        # Without a source every agent's value grows roughly with time.
        assert min(values) > 30
        assert all(protocol.detects_absence(s) for s in simulator.states())
