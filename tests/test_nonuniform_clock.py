"""Tests for the non-uniform (counter mod m) phase clock baseline."""

from __future__ import annotations

import math

import pytest

from repro.analysis.synchronization import analyze_synchrony
from repro.engine.recorder import EventRecorder
from repro.engine.simulator import Simulator
from repro.protocols.nonuniform_clock import NonUniformPhaseClock


class TestConfiguration:
    def test_ring_size(self):
        clock = NonUniformPhaseClock(log_n_estimate=10, hours=3, phase_factor=8)
        assert clock.hour_length == 80
        assert clock.ring_size == 240

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            NonUniformPhaseClock(log_n_estimate=0)
        with pytest.raises(ValueError):
            NonUniformPhaseClock(log_n_estimate=5, hours=0)
        with pytest.raises(ValueError):
            NonUniformPhaseClock(log_n_estimate=5, phase_factor=0)

    def test_initial_state_zero(self, rng):
        assert NonUniformPhaseClock(log_n_estimate=5).initial_state(rng) == 0

    def test_memory_is_logarithmic_in_ring_size(self):
        clock = NonUniformPhaseClock(log_n_estimate=10)
        assert clock.memory_bits(0) == math.ceil(math.log2(clock.ring_size))

    def test_describe_mentions_nonuniform_parameter(self):
        assert NonUniformPhaseClock(log_n_estimate=12).describe()["log_n_estimate"] == 12


class TestTransitions:
    def test_initiator_advances_past_responder(self, make_ctx):
        clock = NonUniformPhaseClock(log_n_estimate=10)
        u, v = clock.interact(5, 9, make_ctx())
        assert u == 10
        assert v == 9

    def test_wrap_emits_tick(self, make_ctx, event_collector):
        clock = NonUniformPhaseClock(log_n_estimate=1, hours=3, phase_factor=1)  # ring = 3
        u, v = clock.interact(2, 2, make_ctx(sink=event_collector))
        assert u == 0
        assert event_collector.kinds() == ["tick"]

    def test_output_is_hour(self):
        clock = NonUniformPhaseClock(log_n_estimate=10, hours=3, phase_factor=8)
        assert clock.output(0) == 0
        assert clock.output(80) == 1
        assert clock.output(239) == 2
        assert clock.phase_of(80) == "hour-1"


class TestClockBehaviour:
    def test_population_stays_roughly_synchronised(self):
        n = 150
        clock = NonUniformPhaseClock(log_n_estimate=math.log2(n))
        simulator = Simulator(clock, n, seed=31)
        simulator.run(200)
        values = list(simulator.states())
        spread = max(values) - min(values)
        # Counters stay within a band much smaller than the ring (unless the
        # population is currently wrapping, in which case the spread is close
        # to the full ring size; accept either situation).
        assert spread <= clock.ring_size
        near_wrap = max(values) > clock.ring_size * 0.9 and min(values) < clock.ring_size * 0.1
        assert spread < clock.ring_size // 2 or near_wrap

    def test_ticks_form_periodic_bursts(self):
        n = 100
        clock = NonUniformPhaseClock(log_n_estimate=math.log2(n))
        recorder = EventRecorder(kinds={"tick"})
        simulator = Simulator(clock, n, seed=32, recorders=[recorder])
        simulator.run(600)
        report = analyze_synchrony(recorder.events, n, gap_threshold=3 * n)
        assert report.total_bursts >= 2
        assert report.mean_period() > 0
