"""Tests for repro.engine.recorder."""

from __future__ import annotations

import math

from repro.engine.population import Population
from repro.engine.protocol import ProtocolEvent
from repro.engine.recorder import (
    EstimateRecorder,
    EventRecorder,
    MemoryRecorder,
    PhaseOccupancyRecorder,
    PopulationSizeRecorder,
    SnapshotStats,
)
from repro.protocols.epidemic import MaxEpidemic


class TestSnapshotStats:
    def test_true_log_n(self):
        stats = SnapshotStats(parallel_time=1, population_size=1024, minimum=1, median=2, maximum=3)
        assert stats.true_log_n == 10.0

    def test_true_log_n_empty_population(self):
        stats = SnapshotStats(parallel_time=1, population_size=0, minimum=0, median=0, maximum=0)
        assert math.isnan(stats.true_log_n)


class TestEstimateRecorder:
    def test_min_median_max(self):
        recorder = EstimateRecorder()
        pop = Population([1, 5, 3, 9, 7])
        recorder.on_snapshot(4, pop, MaxEpidemic())
        row = recorder.rows[0]
        assert row.minimum == 1
        assert row.median == 5
        assert row.maximum == 9
        assert row.parallel_time == 4
        assert row.population_size == 5

    def test_even_population_median(self):
        recorder = EstimateRecorder()
        recorder.on_snapshot(0, Population([1, 2, 3, 4]), MaxEpidemic())
        assert recorder.rows[0].median == 2.5

    def test_custom_output_fn(self):
        recorder = EstimateRecorder(output_fn=lambda state: state * 10)
        recorder.on_snapshot(0, Population([1, 2]), MaxEpidemic())
        assert recorder.rows[0].maximum == 20

    def test_series_columns_aligned(self):
        recorder = EstimateRecorder()
        protocol = MaxEpidemic()
        recorder.on_snapshot(1, Population([1, 2]), protocol)
        recorder.on_snapshot(2, Population([3, 4]), protocol)
        series = recorder.series()
        assert series["parallel_time"] == [1.0, 2.0]
        assert series["maximum"] == [2.0, 4.0]
        assert len(series["minimum"]) == len(series["median"]) == 2


class TestPopulationSizeRecorder:
    def test_sizes(self):
        recorder = PopulationSizeRecorder()
        recorder.on_snapshot(1, Population([1, 2, 3]), MaxEpidemic())
        recorder.on_snapshot(2, Population([1]), MaxEpidemic())
        assert recorder.sizes() == [3, 1]


class TestPhaseOccupancyRecorder:
    def test_counts_phases(self):
        recorder = PhaseOccupancyRecorder(lambda state: "even" if state % 2 == 0 else "odd")
        recorder.on_snapshot(3, Population([0, 1, 2, 3, 4]), MaxEpidemic())
        row = recorder.rows[0]
        assert row["even"] == 3
        assert row["odd"] == 2
        assert row["parallel_time"] == 3


class TestEventRecorder:
    def test_filters_by_kind(self):
        recorder = EventRecorder(kinds={"tick"})
        recorder.on_event(ProtocolEvent("tick", agent_id=1, interaction=10))
        recorder.on_event(ProtocolEvent("other", agent_id=2, interaction=11))
        assert len(recorder.events) == 1
        assert recorder.events[0].kind == "tick"

    def test_collects_all_without_filter(self):
        recorder = EventRecorder()
        recorder.on_event(ProtocolEvent("a", 1, 1))
        recorder.on_event(ProtocolEvent("b", 1, 2))
        assert len(recorder.events) == 2
        assert len(recorder.events_of_kind("a")) == 1


class TestMemoryRecorder:
    def test_bits_tracked(self):
        recorder = MemoryRecorder()
        recorder.on_snapshot(1, Population([1, 255]), MaxEpidemic())
        row = recorder.rows[0]
        assert row["max_bits"] == 8.0
        assert row["mean_bits"] == (1 + 8) / 2

    def test_peak_bits(self):
        recorder = MemoryRecorder()
        protocol = MaxEpidemic()
        recorder.on_snapshot(1, Population([1, 3]), protocol)
        recorder.on_snapshot(2, Population([1, 1023]), protocol)
        assert recorder.peak_bits() == 10.0

    def test_peak_bits_empty(self):
        assert MemoryRecorder().peak_bits() == 0.0


class TestTimelineDensity:
    """Rows and snapshots must stay 1:1 even through empty populations.

    Skipping the empty-population snapshot desynchronized recorder rows
    from the engine's snapshot timeline, misaligning every downstream
    join on row index.
    """

    def test_estimate_recorder_emits_nan_row_when_empty(self):
        recorder = EstimateRecorder()
        protocol = MaxEpidemic()
        recorder.on_snapshot(1, Population([1, 2]), protocol)
        recorder.on_snapshot(2, Population([]), protocol)
        recorder.on_snapshot(3, Population([3]), protocol)
        assert len(recorder.rows) == 3
        empty = recorder.rows[1]
        assert empty.parallel_time == 2
        assert empty.population_size == 0
        assert math.isnan(empty.minimum)
        assert math.isnan(empty.median)
        assert math.isnan(empty.maximum)
        # The series keeps one entry per snapshot, in timeline order.
        assert recorder.series()["parallel_time"] == [1.0, 2.0, 3.0]

    def test_memory_recorder_emits_nan_row_when_empty(self):
        recorder = MemoryRecorder()
        protocol = MaxEpidemic()
        recorder.on_snapshot(1, Population([1, 255]), protocol)
        recorder.on_snapshot(2, Population([]), protocol)
        recorder.on_snapshot(3, Population([1023]), protocol)
        assert len(recorder.rows) == 3
        empty = recorder.rows[1]
        assert empty["population_size"] == 0.0
        assert math.isnan(empty["max_bits"])
        assert math.isnan(empty["mean_bits"])

    def test_peak_bits_ignores_nan_rows(self):
        recorder = MemoryRecorder()
        protocol = MaxEpidemic()
        recorder.on_snapshot(1, Population([1, 3]), protocol)
        recorder.on_snapshot(2, Population([]), protocol)
        recorder.on_snapshot(3, Population([1023]), protocol)
        assert recorder.peak_bits() == 10.0
