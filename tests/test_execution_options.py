"""The unified ExecutionOptions API.

One frozen bundle, validated in one place, accepted by every entry point
(`run_scenario`, `run_sweep`, `run_engine_trials`, serve's `RunRequest`),
with the legacy keyword arguments still working — and passing both sides
raising a clear error instead of silently preferring one.
"""

from __future__ import annotations

import pytest

from repro.engine.errors import ConfigurationError
from repro.engine.options import ExecutionOptions, execution_metadata, jit_status
from repro.engine.runner import run_engine_trials
from repro.experiments.base import ExperimentPreset
from repro.experiments.figures import _trace_engine_factory
from repro.scenarios.runner import run_scenario, run_sweep
from repro.scenarios.spec import SweepSpec
from repro.serve.service import RunRequest


def tiny_preset(**overrides) -> ExperimentPreset:
    data = dict(
        name="tiny", population_sizes=(80,), parallel_time=30, trials=2, seed=11
    )
    data.update(overrides)
    return ExperimentPreset(**data)


class TestValidation:
    def test_defaults_valid(self):
        opts = ExecutionOptions()
        assert opts.effort == "quick"
        assert not opts.checkpointing

    def test_rejects_bad_values(self):
        with pytest.raises(ConfigurationError):
            ExecutionOptions(effort="")
        with pytest.raises(ConfigurationError):
            ExecutionOptions(engine="warp_drive")
        with pytest.raises(ConfigurationError):
            ExecutionOptions(workers=0)
        with pytest.raises(ConfigurationError):
            ExecutionOptions(workers=True)
        with pytest.raises(ConfigurationError):
            ExecutionOptions(jit="yes")
        with pytest.raises(ConfigurationError):
            ExecutionOptions(checkpoint_every=0, checkpoint_dir="x")
        # interrupt_after is a fault-injection knob *on* checkpointing.
        with pytest.raises(ConfigurationError):
            ExecutionOptions(interrupt_after=1)

    def test_accepts_auto_spellings(self):
        opts = ExecutionOptions(engine="auto", workers="auto")
        assert opts.engine == "auto"
        assert opts.workers == "auto"

    def test_replace_revalidates(self):
        opts = ExecutionOptions(workers=2)
        assert opts.replace(workers=4).workers == 4
        with pytest.raises(ConfigurationError):
            opts.replace(workers=-1)


class TestMerge:
    def test_legacy_only_builds_options(self):
        opts = ExecutionOptions.merge(None, effort="default", workers=2)
        assert opts == ExecutionOptions(effort="default", workers=2)

    def test_options_pass_through(self):
        opts = ExecutionOptions(engine="batched")
        assert ExecutionOptions.merge(opts, effort="quick", engine=None) is opts

    def test_both_sides_conflict(self):
        with pytest.raises(ConfigurationError, match="conflicting keyword"):
            ExecutionOptions.merge(ExecutionOptions(engine="batched"), engine="counts")
        with pytest.raises(ConfigurationError, match="effort"):
            ExecutionOptions.merge(ExecutionOptions(), effort="paper")

    def test_unknown_keyword_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown execution option"):
            ExecutionOptions.merge(None, worker_count=3)


class TestRunScenario:
    def test_options_equivalent_to_legacy(self):
        preset = tiny_preset()
        legacy = run_scenario("oscillate", preset=preset, engine="batched")
        bundled = run_scenario(
            "oscillate", options=ExecutionOptions(preset=preset, engine="batched")
        )
        assert bundled.rows == legacy.rows
        assert bundled.metadata["execution"] == legacy.metadata["execution"]

    def test_both_sides_rejected(self):
        with pytest.raises(ConfigurationError, match="conflicting keyword"):
            run_scenario(
                "oscillate",
                options=ExecutionOptions(preset=tiny_preset()),
                engine="batched",
            )


class TestRunSweep:
    def test_options_accepted(self):
        sweep = SweepSpec.from_mapping("oscillate", {"n": (60, 90)})
        results = run_sweep(
            sweep, options=ExecutionOptions(preset=tiny_preset(), engine="batched")
        )
        assert [label for label, _ in results] == ["n=60", "n=90"]

    def test_both_sides_rejected(self):
        sweep = SweepSpec.from_mapping("oscillate", {"n": (60,)})
        with pytest.raises(ConfigurationError, match="conflicting keyword"):
            run_sweep(sweep, options=ExecutionOptions(), effort="paper")


class TestRunEngineTrials:
    def _factory(self, engine, rng, ensemble_trials):
        from repro.core.params import empirical_parameters

        return _trace_engine_factory(
            engine,
            rng,
            ensemble_trials,
            n=64,
            params=empirical_parameters(),
            resize_schedule=(),
            initial_estimate=None,
            sub_batches=4,
        )

    def test_options_equivalent_to_legacy(self):
        legacy = run_engine_trials(
            self._factory, engine="batched", trials=2, seed=5, parallel_time=10
        )
        bundled = run_engine_trials(
            self._factory,
            engine="batched",
            trials=2,
            seed=5,
            parallel_time=10,
            options=ExecutionOptions(),
        )
        assert bundled == legacy

    def test_both_sides_rejected(self):
        with pytest.raises(ConfigurationError, match="conflicting keyword"):
            run_engine_trials(
                self._factory,
                engine="batched",
                trials=2,
                seed=5,
                parallel_time=10,
                workers=2,
                options=ExecutionOptions(workers=2),
            )


class TestRunRequest:
    def test_options_flatten_to_fields(self):
        via_options = RunRequest(
            scenario="fig2",
            options=ExecutionOptions(effort="default", engine="batched", workers=2),
        )
        via_fields = RunRequest(
            scenario="fig2", effort="default", engine="batched", workers=2
        )
        # Equal requests -> equal summaries -> one cache key downstream.
        assert via_options == via_fields
        assert via_options.summary() == via_fields.summary()
        assert "options" not in via_options.summary()

    def test_both_sides_rejected(self):
        with pytest.raises(ConfigurationError, match="conflicting field"):
            RunRequest(
                scenario="fig2",
                engine="counts",
                options=ExecutionOptions(engine="batched"),
            )

    def test_checkpoint_fields_rejected(self):
        with pytest.raises(ConfigurationError, match="checkpointing"):
            RunRequest(
                scenario="fig2",
                options=ExecutionOptions(checkpoint_every=10, checkpoint_dir="x"),
            )


class TestMetadataHelpers:
    def test_execution_metadata_shape(self):
        block = execution_metadata(
            requested_engine=None, engines_used=["batched", "batched"], workers=None, jit=False
        )
        assert block == {
            "requested_engine": None,
            "engine": "batched",
            "engines": ["batched"],
            "workers": None,
            "jit_requested": False,
            "jit": "off",
        }
        mixed = execution_metadata(
            requested_engine="auto",
            engines_used=["batched", "counts"],
            workers=2,
            jit=False,
        )
        assert mixed["engine"] == "mixed"
        assert mixed["engines"] == ["batched", "counts"]

    def test_jit_status_off(self):
        assert jit_status(False) == "off"
        # True resolves to "compiled" or a fallback reason, never "off".
        assert jit_status(True) != "off"


def test_scenarios_reexports_options():
    from repro.scenarios import ExecutionOptions as reexported

    assert reexported is ExecutionOptions
