"""Canonical encoding and cache keys: invariance, distinctness, golden pins.

The serving layer's correctness rests on one property: two requests get the
same SHA-256 exactly when they denote the same computation.  These tests pin
the three layers of that property — the canonical JSON encoding, the
spec-level key, and the run-level key — plus golden hashes so an accidental
encoding change (which would silently orphan every cached artifact) fails
loudly here instead.
"""

from __future__ import annotations

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.errors import ConfigurationError
from repro.engine.parallel import resolve_workers
from repro.experiments.base import ExperimentPreset
from repro.scenarios.spec import ScenarioSpec, SweepSpec, canonical_json
from repro.serve.keys import (
    canonical_cache_key,
    normalize_engine_request,
    run_encoding,
)


def metric_one(trace, point, preset, params):
    return {"n": point.n}


def metric_two(trace, point, preset, params):
    return {"m": point.n}


def make_spec(**overrides) -> ScenarioSpec:
    data = dict(name="keys_spec", description="key test", metrics=(metric_one,))
    data.update(overrides)
    return ScenarioSpec(**data)


def make_preset(**overrides) -> ExperimentPreset:
    data = dict(
        name="tiny", population_sizes=(80,), parallel_time=40, trials=2, seed=11
    )
    extra = overrides.pop("extra", {})
    data.update(overrides)
    return ExperimentPreset(extra=extra, **data)


# ------------------------------------------------------------ canonical JSON


class TestCanonicalJson:
    def test_dict_order_is_erased(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

    def test_container_spelling_is_erased(self):
        assert canonical_json((1, 2, 3)) == canonical_json([1, 2, 3])
        assert canonical_json({"x": (1, (2,))}) == canonical_json({"x": [1, [2]]})

    def test_integral_floats_collapse_to_ints(self):
        assert canonical_json(5.0) == canonical_json(5)
        assert canonical_json({"seed": 20240508.0}) == canonical_json({"seed": 20240508})
        # ... but a genuinely fractional float stays distinct.
        assert canonical_json(5.5) != canonical_json(5)

    def test_bools_are_not_ints(self):
        assert canonical_json(True) != canonical_json(1)
        assert canonical_json(False) != canonical_json(0)

    def test_sets_are_sorted(self):
        assert canonical_json({3, 1, 2}) == canonical_json([1, 2, 3])

    def test_nonfinite_rejected(self):
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ConfigurationError):
                canonical_json(bad)

    def test_non_string_keys_rejected(self):
        with pytest.raises(ConfigurationError):
            canonical_json({1: "x"})

    def test_unencodable_values_rejected(self):
        with pytest.raises(ConfigurationError):
            canonical_json(object())

    @settings(max_examples=50)
    @given(
        st.dictionaries(
            st.text(min_size=1, max_size=8),
            st.recursive(
                st.one_of(
                    st.integers(-(10**9), 10**9),
                    st.floats(allow_nan=False, allow_infinity=False, width=32),
                    st.booleans(),
                    st.text(max_size=8),
                    st.none(),
                ),
                lambda inner: st.lists(inner, max_size=3)
                | st.dictionaries(st.text(min_size=1, max_size=4), inner, max_size=3),
                max_leaves=10,
            ),
            max_size=5,
        )
    )
    def test_property_insertion_order_invariant(self, payload):
        reordered = dict(reversed(list(payload.items())))
        assert canonical_json(payload) == canonical_json(reordered)


# ------------------------------------------------------------ spec-level key


class TestSpecCacheKey:
    def test_equal_specs_equal_keys(self):
        assert make_spec().cache_key() == make_spec().cache_key()

    @pytest.mark.parametrize(
        "change",
        [
            {"description": "other"},
            {"engine": "batched"},
            {"engines": ("batched", "ensemble")},
            {"keep_series": True},
            {"tags": ("adversarial",)},
            {"metrics": (metric_two,)},
            {"metrics": (metric_one, metric_two)},
            {"experiment_id": "other_id"},
            {"name": "other_name"},
        ],
    )
    def test_any_differing_field_changes_key(self, change):
        assert make_spec(**change).cache_key() != make_spec().cache_key()

    def test_encoding_is_json_encodable(self):
        # The encoding must survive canonical_json without special-casing.
        assert canonical_json(make_spec().canonical_encoding())


# ------------------------------------------------------------- run-level key


def run_key(**kwargs) -> str:
    spec = kwargs.pop("spec", make_spec())
    preset = kwargs.pop("preset", make_preset())
    return canonical_cache_key(spec, preset, **kwargs)


class TestRunCacheKey:
    def test_identical_requests_identical_keys(self):
        assert run_key() == run_key()

    @pytest.mark.parametrize(
        "preset_change",
        [
            {"population_sizes": (81,)},
            {"parallel_time": 41},
            {"trials": 3},
            {"seed": 12},
            {"name": "other"},
            {"extra": {"keep": 50}},
            {"extra": {"params_overrides": {"tau1": 3.0}}},
        ],
    )
    def test_any_preset_field_changes_key(self, preset_change):
        assert run_key(preset=make_preset(**preset_change)) != run_key()

    def test_schedule_knobs_change_key(self):
        base = run_key(preset=make_preset(extra={"period": 100}))
        assert run_key(preset=make_preset(extra={"period": 200})) != base

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"engine": "batched"},
            {"workers": 1},
            {"workers": 2},
            {"jit": True},
            {"seed": 99},
        ],
    )
    def test_execution_knobs_change_key(self, kwargs):
        assert run_key(**kwargs) != run_key()

    def test_sweep_changes_key_and_axes_matter(self):
        sweep_a = SweepSpec.from_mapping("keys_spec", {"n": (32, 64)})
        sweep_b = SweepSpec.from_mapping("keys_spec", {"n": (32, 128)})
        assert run_key(sweep=sweep_a) != run_key()
        assert run_key(sweep=sweep_a) != run_key(sweep=sweep_b)
        assert run_key(sweep=sweep_a) == run_key(sweep=sweep_a)

    def test_preset_extra_ordering_is_erased(self):
        a = make_preset(extra={"keep": 50, "drop_time": 300})
        b = make_preset(extra={"drop_time": 300, "keep": 50})
        assert run_key(preset=a) == run_key(preset=b)

    def test_float_spelling_is_erased(self):
        a = make_preset(extra={"tau": 2.0})
        b = make_preset(extra={"tau": 2})
        assert run_key(preset=a) == run_key(preset=b)

    def test_engine_request_normalization(self):
        unpinned = make_spec()
        assert normalize_engine_request(unpinned, None) == "auto"
        assert run_key(spec=unpinned, engine=None) == run_key(spec=unpinned, engine="auto")
        pinned = make_spec(engine="batched")
        assert normalize_engine_request(pinned, None) == "batched"
        # For a pinned spec, the default and an explicit "auto" are different
        # computations and must not share a cache entry.
        assert run_key(spec=pinned, engine=None) == run_key(spec=pinned, engine="batched")
        assert run_key(spec=pinned, engine=None) != run_key(spec=pinned, engine="auto")

    def test_workers_auto_keys_on_resolved_count(self):
        resolved = resolve_workers("auto")
        assert run_key(workers="auto") == run_key(workers=resolved)

    def test_registered_name_and_spec_agree(self):
        # canonical_cache_key accepts the registered name or the spec object.
        from repro.scenarios.registry import get_scenario
        from repro.scenarios.runner import resolve_preset

        spec = get_scenario("fig2")
        preset = resolve_preset(spec, "quick")
        assert canonical_cache_key("fig2", preset) == canonical_cache_key(spec, preset)


# ------------------------------------------------------------------- goldens

#: Pinned canonical encodings: changing these strings means every deployed
#: cache key changes (all cached artifacts orphan).  If a change is
#: intentional, bump repro.serve.keys.KEY_SCHEMA_VERSION and re-pin.
GOLDEN_ENCODINGS = {
    "scalar-mix": (
        {"b": [1, 2.5], "a": {"y": True, "x": None}, "c": 5.0},
        '{"a":{"x":null,"y":true},"b":[1,2.5],"c":5}',
    ),
    "nested": (
        {"outer": {"inner": (1, (2, 3))}, "tag": "x"},
        '{"outer":{"inner":[1,[2,3]]},"tag":"x"}',
    ),
}

#: SHA-256 of the canonical encodings above — the exact hashing contract.
GOLDEN_HASHES = {
    "scalar-mix": "e0769b07b7e55fe826917e5ce53bf5a7debd4688f37da92c1a1e40169c47ed23",
    "nested": "acd75e5c58457ea5e00b14fafe930e7f9c692928d14cde207da67782f061ad46",
}


class TestGoldenPins:
    @pytest.mark.parametrize("case", sorted(GOLDEN_ENCODINGS))
    def test_encoding_pinned(self, case):
        value, expected = GOLDEN_ENCODINGS[case]
        assert canonical_json(value) == expected

    @pytest.mark.parametrize("case", sorted(GOLDEN_HASHES))
    def test_hash_pinned(self, case):
        _, encoding = GOLDEN_ENCODINGS[case]
        digest = hashlib.sha256(encoding.encode("ascii")).hexdigest()
        assert digest == GOLDEN_HASHES[case]

    def test_run_encoding_shape_pinned(self):
        # The key's *shape* is part of the contract: a field appearing or
        # disappearing must be a conscious KEY_SCHEMA_VERSION bump.
        encoding = run_encoding(make_spec(), make_preset())
        assert sorted(encoding) == [
            "engine",
            "jit",
            "preset",
            "scenario",
            "schema",
            "sweep",
            "workers",
        ]
        assert encoding["schema"] == 2
        assert sorted(encoding["preset"]) == [
            "extra",
            "name",
            "parallel_time",
            "population_sizes",
            "seed",
            "trials",
        ]
