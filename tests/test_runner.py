"""Tests for the multi-trial runner."""

from __future__ import annotations

import pytest

from repro.engine.recorder import EstimateRecorder
from repro.engine.runner import TrialRunner, aggregate_series
from repro.engine.simulator import Simulator
from repro.protocols.static_counting import MaxGrvCounting


def _picklable_trial(trial_index, rng):
    """Module-level trial function so that worker processes can unpickle it."""
    recorder = EstimateRecorder()
    simulator = Simulator(MaxGrvCounting(), 40, rng=rng, recorders=[recorder])
    result = simulator.run(15)
    series = recorder.series()
    return result, {"parallel_time": series["parallel_time"], "maximum": series["maximum"]}


class TestAggregateSeries:
    def test_basic_aggregation(self):
        agg = aggregate_series("x", [0, 1, 2], [[1, 2, 3], [3, 2, 1], [2, 2, 2]])
        assert agg.minimum == [1, 2, 1]
        assert agg.median == [2, 2, 2]
        assert agg.maximum == [3, 2, 3]
        assert agg.index == [0, 1, 2]

    def test_truncates_to_shortest_trial(self):
        agg = aggregate_series("x", [0, 1, 2], [[1, 2, 3], [4, 5]])
        assert len(agg.minimum) == 2

    def test_empty_trials(self):
        agg = aggregate_series("x", [0, 1], [])
        assert agg.minimum == []
        assert agg.as_dict()["median"] == []

    def test_even_number_of_trials_median(self):
        agg = aggregate_series("x", [0], [[1.0], [3.0]])
        assert agg.median == [2.0]

    def test_as_dict_round_trip(self):
        agg = aggregate_series("x", [0, 1], [[1, 2]])
        data = agg.as_dict()
        assert set(data) == {"index", "minimum", "median", "maximum"}

    def test_matches_statistics_median_reference(self):
        """The vectorised aggregation reproduces the per-column reference."""
        import statistics

        rng = __import__("numpy").random.default_rng(3)
        per_trial = [list(rng.normal(size=9)) for _ in range(5)]
        index = list(range(9))
        agg = aggregate_series("x", index, per_trial)
        for t in range(9):
            column = [trial[t] for trial in per_trial]
            assert agg.minimum[t] == min(column)
            assert agg.median[t] == statistics.median(column)
            assert agg.maximum[t] == max(column)
        assert all(isinstance(v, float) for v in agg.median)

    def test_ragged_trials_with_short_index(self):
        agg = aggregate_series("x", [0, 1], [[1, 2, 3], [4, 5, 6], [7, 8]])
        assert len(agg.median) == 2
        assert agg.median == [4.0, 5.0]


class TestTrialRunner:
    @staticmethod
    def _trial(trial_index, rng):
        recorder = EstimateRecorder()
        simulator = Simulator(MaxGrvCounting(), 50, rng=rng, recorders=[recorder])
        result = simulator.run(20)
        series = recorder.series()
        return result, {"parallel_time": series["parallel_time"], "maximum": series["maximum"]}

    def test_runs_requested_trials(self):
        runner = TrialRunner(self._trial, trials=3, seed=1)
        outcomes = runner.run()
        assert len(outcomes) == 3
        assert [o.trial for o in outcomes] == [0, 1, 2]

    def test_rejects_zero_trials(self):
        with pytest.raises(ValueError):
            TrialRunner(self._trial, trials=0, seed=1)

    def test_trials_use_independent_streams(self):
        runner = TrialRunner(self._trial, trials=2, seed=5)
        outcomes = runner.run()
        # Different random streams almost surely give different trajectories.
        assert outcomes[0].data["maximum"] != outcomes[1].data["maximum"]

    def test_run_and_aggregate(self):
        runner = TrialRunner(self._trial, trials=3, seed=2)
        outcomes, aggregated = runner.run_and_aggregate("maximum")
        assert len(outcomes) == 3
        assert len(aggregated.maximum) == len(aggregated.index) > 0
        # The estimate is the max of GRVs, so it is at least 1 everywhere.
        assert all(value >= 1 for value in aggregated.minimum)

    def test_reproducible_with_same_seed(self):
        first = TrialRunner(self._trial, trials=2, seed=9).run()
        second = TrialRunner(self._trial, trials=2, seed=9).run()
        assert first[0].data["maximum"] == second[0].data["maximum"]


class TestMultiprocessing:
    def test_rejects_non_positive_processes(self):
        with pytest.raises(ValueError):
            TrialRunner(_picklable_trial, trials=2, seed=1, processes=0)

    def test_processes_one_is_synchronous(self):
        serial = TrialRunner(_picklable_trial, trials=2, seed=7).run()
        explicit = TrialRunner(_picklable_trial, trials=2, seed=7, processes=1).run()
        assert [o.data["maximum"] for o in serial] == [
            o.data["maximum"] for o in explicit
        ]

    def test_parallel_matches_serial_exactly(self):
        """Fan-out over worker processes must not change any outcome.

        Each trial owns a spawned random stream, so scheduling is
        irrelevant: the parallel mode has to reproduce the serial results
        bit for bit and preserve trial order.
        """
        serial = TrialRunner(_picklable_trial, trials=4, seed=11).run()
        parallel = TrialRunner(_picklable_trial, trials=4, seed=11, processes=2).run()
        assert [o.trial for o in parallel] == [0, 1, 2, 3]
        for left, right in zip(serial, parallel):
            assert left.data["maximum"] == right.data["maximum"]
            assert left.result.interactions == right.result.interactions

    def test_parallel_run_and_aggregate(self):
        runner = TrialRunner(_picklable_trial, trials=3, seed=13, processes=2)
        outcomes, aggregated = runner.run_and_aggregate("maximum")
        assert len(outcomes) == 3
        assert len(aggregated.maximum) == len(aggregated.index) > 0


class TestRunEngineTrials:
    """The shared trial loop used by run_estimate_trace and the scenarios."""

    @staticmethod
    def _factory(engine_name, rng, trials):
        from repro.core.dynamic_counting import DynamicSizeCounting
        from repro.engine.registry import make_engine

        return make_engine(
            engine_name,
            DynamicSizeCounting(),
            60,
            rng=rng,
            trials=trials if engine_name == "ensemble" else None,
        )

    def test_looped_mode_matches_manual_spawned_streams(self):
        from repro.core.dynamic_counting import DynamicSizeCounting
        from repro.engine.registry import make_engine
        from repro.engine.rng import RandomSource, spawn_streams
        from repro.engine.runner import run_engine_trials

        via_helper = run_engine_trials(
            self._factory, engine="sequential", trials=3, seed=5, parallel_time=8
        )
        manual = []
        for generator in spawn_streams(5, 3):
            simulator = make_engine(
                "sequential", DynamicSizeCounting(), 60, rng=RandomSource(generator)
            )
            manual.append(simulator.run(8).series())
        assert via_helper == manual

    def test_ensemble_mode_returns_one_series_per_trial(self):
        from repro.engine.runner import run_engine_trials

        series = run_engine_trials(
            self._factory, engine="ensemble", trials=4, seed=5, parallel_time=6
        )
        assert len(series) == 4
        assert all(len(s["parallel_time"]) == 6 for s in series)

    def test_rejects_zero_trials(self):
        from repro.engine.runner import run_engine_trials

        with pytest.raises(ValueError):
            run_engine_trials(
                self._factory, engine="sequential", trials=0, seed=5, parallel_time=4
            )
