"""Tests for the multi-trial runner."""

from __future__ import annotations

import pytest

from repro.engine.recorder import EstimateRecorder
from repro.engine.runner import TrialRunner, aggregate_series
from repro.engine.simulator import Simulator
from repro.protocols.static_counting import MaxGrvCounting


class TestAggregateSeries:
    def test_basic_aggregation(self):
        agg = aggregate_series("x", [0, 1, 2], [[1, 2, 3], [3, 2, 1], [2, 2, 2]])
        assert agg.minimum == [1, 2, 1]
        assert agg.median == [2, 2, 2]
        assert agg.maximum == [3, 2, 3]
        assert agg.index == [0, 1, 2]

    def test_truncates_to_shortest_trial(self):
        agg = aggregate_series("x", [0, 1, 2], [[1, 2, 3], [4, 5]])
        assert len(agg.minimum) == 2

    def test_empty_trials(self):
        agg = aggregate_series("x", [0, 1], [])
        assert agg.minimum == []
        assert agg.as_dict()["median"] == []

    def test_even_number_of_trials_median(self):
        agg = aggregate_series("x", [0], [[1.0], [3.0]])
        assert agg.median == [2.0]

    def test_as_dict_round_trip(self):
        agg = aggregate_series("x", [0, 1], [[1, 2]])
        data = agg.as_dict()
        assert set(data) == {"index", "minimum", "median", "maximum"}


class TestTrialRunner:
    @staticmethod
    def _trial(trial_index, rng):
        recorder = EstimateRecorder()
        simulator = Simulator(MaxGrvCounting(), 50, rng=rng, recorders=[recorder])
        result = simulator.run(20)
        series = recorder.series()
        return result, {"parallel_time": series["parallel_time"], "maximum": series["maximum"]}

    def test_runs_requested_trials(self):
        runner = TrialRunner(self._trial, trials=3, seed=1)
        outcomes = runner.run()
        assert len(outcomes) == 3
        assert [o.trial for o in outcomes] == [0, 1, 2]

    def test_rejects_zero_trials(self):
        with pytest.raises(ValueError):
            TrialRunner(self._trial, trials=0, seed=1)

    def test_trials_use_independent_streams(self):
        runner = TrialRunner(self._trial, trials=2, seed=5)
        outcomes = runner.run()
        # Different random streams almost surely give different trajectories.
        assert outcomes[0].data["maximum"] != outcomes[1].data["maximum"]

    def test_run_and_aggregate(self):
        runner = TrialRunner(self._trial, trials=3, seed=2)
        outcomes, aggregated = runner.run_and_aggregate("maximum")
        assert len(outcomes) == 3
        assert len(aggregated.maximum) == len(aggregated.index) > 0
        # The estimate is the max of GRVs, so it is at least 1 everywhere.
        assert all(value >= 1 for value in aggregated.minimum)

    def test_reproducible_with_same_seed(self):
        first = TrialRunner(self._trial, trials=2, seed=9).run()
        second = TrialRunner(self._trial, trials=2, seed=9).run()
        assert first[0].data["maximum"] == second[0].data["maximum"]
