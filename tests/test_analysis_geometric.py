"""Tests for the geometric-maximum analysis helpers (Lemma 4.1)."""

from __future__ import annotations

import math

import pytest

from repro.analysis.geometric import (
    geometric_cdf,
    geometric_pmf,
    lemma_4_1_bounds,
    lemma_4_1_failure_probability,
    max_grv_cdf,
    max_grv_expectation,
    probability_max_in_bounds,
)


class TestDistributionBasics:
    def test_pmf_values(self):
        assert geometric_pmf(1) == 0.5
        assert geometric_pmf(2) == 0.25
        assert geometric_pmf(0) == 0.0

    def test_pmf_sums_to_one(self):
        assert sum(geometric_pmf(v) for v in range(1, 60)) == pytest.approx(1.0)

    def test_pmf_invalid_p(self):
        with pytest.raises(ValueError):
            geometric_pmf(1, p=0.0)

    def test_cdf_values(self):
        assert geometric_cdf(1) == 0.5
        assert geometric_cdf(2) == 0.75
        assert geometric_cdf(0) == 0.0

    def test_cdf_monotone(self):
        values = [geometric_cdf(v) for v in range(1, 20)]
        assert values == sorted(values)

    def test_max_cdf_power_relation(self):
        assert max_grv_cdf(3, 5) == pytest.approx(geometric_cdf(3) ** 5)

    def test_max_cdf_invalid_count(self):
        with pytest.raises(ValueError):
            max_grv_cdf(3, 0)


class TestExpectation:
    def test_single_sample_expectation_is_two(self):
        # E[Geom(1/2)] = 2.
        assert max_grv_expectation(1) == pytest.approx(2.0, abs=1e-6)

    def test_expectation_grows_like_log2(self):
        e64 = max_grv_expectation(64)
        e1024 = max_grv_expectation(1024)
        assert e1024 - e64 == pytest.approx(math.log2(1024) - math.log2(64), abs=0.5)

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            max_grv_expectation(0)


class TestLemma41:
    def test_bounds_formula(self):
        lower, upper = lemma_4_1_bounds(1024, k=2)
        assert lower == 5.0
        assert upper == 2 * 3 * 10

    def test_bounds_validation(self):
        with pytest.raises(ValueError):
            lemma_4_1_bounds(1, 2)
        with pytest.raises(ValueError):
            lemma_4_1_bounds(100, 0)

    def test_failure_probability_decreases_with_n(self):
        assert lemma_4_1_failure_probability(1000, 2) < lemma_4_1_failure_probability(100, 2)

    def test_failure_probability_capped_at_one(self):
        assert lemma_4_1_failure_probability(2, 1) <= 1.0

    def test_exact_probability_dominates_lemma_bound(self):
        """The exact probability of the Lemma 4.1 event beats 1 - 2 n^-k."""
        for n, k in [(100, 1), (100, 2), (1000, 1), (1000, 2)]:
            exact = probability_max_in_bounds(n, k)
            assert exact >= 1.0 - lemma_4_1_failure_probability(n, k)

    def test_exact_probability_is_a_probability(self):
        assert 0.0 <= probability_max_in_bounds(50, 1) <= 1.0
