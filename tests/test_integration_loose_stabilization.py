"""Integration tests: the loose-stabilization behaviour end to end (exact engine).

These tests exercise the three behaviours the paper's evaluation is built
around, at small scale on the exact sequential engine:

* convergence from the empty initial configuration (Fig. 2 shape),
* adaptation after the adversary decimates the population (Fig. 4 shape),
* recovery from a large initial over-estimate (Fig. 5 shape),
* growth of the population (the "agents are added" half of the dynamic model).
"""

from __future__ import annotations

import math

import pytest

from repro.analysis.convergence import loose_stabilization_report
from repro.core.dynamic_counting import DynamicSizeCounting
from repro.core.params import empirical_parameters
from repro.engine.adversary import AddAgentsAt, RemoveAllButAt
from repro.engine.recorder import EstimateRecorder
from repro.engine.rng import RandomSource
from repro.engine.simulator import Simulator


def run_with_recorder(protocol, population, seed, parallel_time, adversary=None):
    recorder = EstimateRecorder()
    simulator = Simulator(
        protocol, population, seed=seed, adversary=adversary, recorders=[recorder]
    )
    simulator.run(parallel_time)
    return recorder


class TestConvergenceFromEmptyConfiguration:
    def test_converges_and_holds(self):
        n = 200
        protocol = DynamicSizeCounting()
        recorder = run_with_recorder(protocol, n, seed=301, parallel_time=400)
        report = loose_stabilization_report(
            recorder.rows, lower_factor=0.5, upper_factor=8.0, persistence=5, grace=2
        )
        assert report.convergence_time is not None
        # Convergence is fast: well under 10 * (log n-hat + log n) here.
        assert report.convergence_time <= 10 * math.log2(n)
        assert report.held_until_end
        assert report.holding_time >= 300

    def test_all_agents_agree_after_convergence(self):
        protocol = DynamicSizeCounting()
        recorder = run_with_recorder(protocol, 150, seed=302, parallel_time=200)
        final = recorder.rows[-1]
        assert final.maximum - final.minimum <= 2


class TestAdaptationToDecimation:
    def test_estimate_drops_after_removal(self):
        n, keep = 1000, 50
        protocol = DynamicSizeCounting()
        recorder = run_with_recorder(
            protocol,
            n,
            seed=303,
            parallel_time=800,
            adversary=RemoveAllButAt(time=100, keep=keep),
        )
        before = [r.median for r in recorder.rows if r.parallel_time < 100][-1]
        tail = sorted(r.median for r in recorder.rows if r.parallel_time > 650)
        after = tail[len(tail) // 2]
        expected_drop = math.log2(n / keep)
        assert before - after >= 0.5 * expected_drop
        # The post-drop estimate is a constant-factor approximation of the
        # new population's log2.
        assert after <= 3.5 * math.log2(keep)


class TestRecoveryFromOverestimate:
    def test_initial_estimate_is_forgotten(self):
        n, initial_estimate = 300, 40.0
        protocol = DynamicSizeCounting(empirical_parameters())
        population = protocol.make_estimate_population(
            n, initial_estimate, RandomSource.from_seed(304)
        )
        recorder = run_with_recorder(protocol, population, seed=305, parallel_time=1500)
        assert recorder.rows[0].median == initial_estimate
        tail = sorted(r.median for r in recorder.rows if r.parallel_time > 1200)
        steady = tail[len(tail) // 2]
        assert steady < initial_estimate
        assert steady <= 3 * math.log2(n)


class TestGrowth:
    def test_estimate_grows_when_agents_are_added(self):
        start, added = 50, 1500
        protocol = DynamicSizeCounting()
        recorder = run_with_recorder(
            protocol,
            start,
            seed=306,
            parallel_time=600,
            adversary=AddAgentsAt(time=100, count=added),
        )
        before = [r.median for r in recorder.rows if r.parallel_time < 100][-1]
        tail = sorted(r.median for r in recorder.rows if r.parallel_time > 450)
        after = tail[len(tail) // 2]
        # log2(1550/50) is about 5; require at least a couple of units of growth.
        assert after - before >= 2.0


class TestBudgetSanity:
    @pytest.mark.parametrize("n", [100, 400])
    def test_memory_stays_logarithmic(self, n):
        """No variable blows up over a long run (space claim of Theorem 2.1)."""
        from repro.engine.recorder import MemoryRecorder

        protocol = DynamicSizeCounting()
        recorder = MemoryRecorder()
        simulator = Simulator(protocol, n, seed=307, recorders=[recorder])
        simulator.run(300)
        peak = recorder.peak_bits()
        # Four variables, each O(log(tau_1 * k * log n)) bits: far below 64.
        assert peak <= 64
