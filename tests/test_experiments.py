"""Tests for the experiment harness (presets, runners, CLI, persistence).

The experiment tests use tiny custom presets so that the whole module runs
in seconds; the ``quick`` presets themselves are exercised by the benchmark
suite.
"""

from __future__ import annotations

import math

import pytest

from repro.engine.errors import ConfigurationError
from repro.experiments.base import ExperimentPreset, ExperimentResult
from repro.experiments.baseline_comparison import run_baseline_comparison
from repro.experiments.cli import EXPERIMENT_RUNNERS, main
from repro.experiments.config import PRESETS, get_preset, list_presets
from repro.experiments.convergence_table import run_convergence_table, trace_to_snapshots
from repro.experiments.fig2_size_estimate import run_fig2
from repro.experiments.fig3_relative_error import run_fig3
from repro.experiments.fig4_population_drop import adaptation_time, run_fig4
from repro.experiments.fig5_initial_estimate import forgetting_time, run_fig5
from repro.experiments.figures import run_estimate_trace
from repro.experiments.memory_table import run_memory_table
from repro.experiments.phase_clock_experiment import run_phase_clock_experiment


def tiny(**extra) -> ExperimentPreset:
    return ExperimentPreset(
        name="tiny",
        population_sizes=(200,),
        parallel_time=150,
        trials=2,
        seed=7,
        extra=extra,
    )


class TestPresets:
    def test_every_experiment_has_three_effort_levels(self):
        for experiment, levels in PRESETS.items():
            assert set(levels) == {"quick", "default", "paper"}, experiment

    def test_get_preset_errors(self):
        with pytest.raises(KeyError):
            get_preset("nonexistent")
        with pytest.raises(KeyError):
            get_preset("fig2", "gigantic")

    def test_list_presets(self):
        listing = list_presets()
        assert "fig4" in listing
        assert listing["fig4"] == ["default", "paper", "quick"]

    def test_paper_presets_match_paper_parameters(self):
        fig4 = get_preset("fig4", "paper")
        assert fig4.extra["drop_time"] == 1350
        assert fig4.extra["keep"] == 500
        assert fig4.parallel_time == 5000
        assert fig4.trials == 96
        assert 1_000_000 in get_preset("fig2", "paper").population_sizes

    def test_with_overrides(self):
        preset = get_preset("fig2", "quick").with_overrides(trials=1, extra={"foo": 1})
        assert preset.trials == 1
        assert preset.extra["foo"] == 1


class TestEstimateTrace:
    def test_run_estimate_trace_structure(self):
        trace = run_estimate_trace(300, 60, trials=2, seed=3)
        assert len(trace.parallel_time) == 60
        assert len(trace.minimum) == len(trace.maximum) == 60
        assert all(lo <= hi for lo, hi in zip(trace.minimum, trace.maximum))

    def test_run_estimate_trace_with_resize(self):
        trace = run_estimate_trace(300, 60, trials=1, seed=3, resize_schedule=[(20, 50)])
        assert trace.population_size[10] == 300
        assert trace.population_size[-1] == 50

    def test_run_estimate_trace_with_initial_estimate(self):
        trace = run_estimate_trace(100, 10, trials=1, seed=3, initial_estimate=60.0)
        assert trace.maximum[0] == 60.0

    def test_rejects_zero_trials(self):
        with pytest.raises(ValueError):
            run_estimate_trace(100, 10, trials=0, seed=3)

    def test_rejects_unknown_engine(self):
        with pytest.raises(ConfigurationError):
            run_estimate_trace(100, 10, trials=1, seed=3, engine="warp")

    def test_sequential_and_array_engines_agree_exactly(self):
        """The two exact engines produce identical traces for shared seeds."""
        sequential = run_estimate_trace(80, 40, trials=2, seed=5, engine="sequential")
        array = run_estimate_trace(80, 40, trials=2, seed=5, engine="array")
        assert sequential.series() == array.series()

    @pytest.mark.parametrize("engine", ("sequential", "array"))
    def test_exact_engines_support_workload_knobs(self, engine):
        trace = run_estimate_trace(
            100, 30, trials=1, seed=4, engine=engine, resize_schedule=[(10, 40)]
        )
        assert trace.population_size[-1] == 40
        trace = run_estimate_trace(
            80, 10, trials=1, seed=4, engine=engine, initial_estimate=60.0
        )
        assert trace.maximum[0] == 60.0


class TestFigureRunners:
    def test_fig2_rows_and_series(self):
        result = run_fig2(tiny())
        assert result.experiment == "fig2"
        assert len(result.rows) == 1
        assert "n_200" in result.series
        row = result.rows[0]
        assert row["log2_n"] == pytest.approx(math.log2(200))
        assert row["steady_median"] >= 0.5 * row["log2_n"]

    def test_fig3_relative_deviation_positive(self):
        result = run_fig3(tiny())
        row = result.rows[0]
        assert row["relative_median"] >= 0.5
        assert row["relative_minimum"] <= row["relative_maximum"]

    def test_fig4_detects_adaptation(self):
        result = run_fig4(tiny(drop_time=40, keep=20))
        row = result.rows[0]
        assert row["keep"] == 20
        assert row["median_before_drop"] > 0

    def test_fig5_tracks_initial_estimate(self):
        result = run_fig5(tiny(initial_estimate=30.0))
        row = result.rows[0]
        assert row["initial_estimate"] == 30.0

    def test_adaptation_time_midpoint_rule(self):
        times = [0.0, 10.0, 20.0, 30.0]
        medians = [16.0, 16.0, 12.0, 10.0]
        assert adaptation_time(times, medians, 5.0, pre_drop_level=16.0, target_level=10.0) == 20.0
        assert adaptation_time(times, medians, 5.0, pre_drop_level=9.0, target_level=10.0) == 5.0
        assert (
            adaptation_time(times, [16.0] * 4, 5.0, pre_drop_level=16.0, target_level=10.0) is None
        )

    def test_forgetting_time(self):
        assert forgetting_time([0, 1, 2], [60, 60, 12], 60) == 2
        assert forgetting_time([0, 1], [60, 60], 60) is None


class TestTableRunners:
    def test_convergence_table(self):
        result = run_convergence_table(tiny(initial_estimates=(1.0,)))
        assert len(result.rows) == 1
        assert result.rows[0]["converged"]

    def test_trace_to_snapshots(self):
        trace = run_estimate_trace(100, 5, trials=1, seed=1)
        snapshots = trace_to_snapshots(trace)
        assert len(snapshots) == 5
        assert snapshots[0].population_size == 100

    def test_memory_table_shows_baseline_overhead(self):
        preset = ExperimentPreset(
            name="tiny", population_sizes=(80,), parallel_time=60, trials=1, seed=5
        )
        result = run_memory_table(preset)
        row = result.rows[0]
        assert row["doty_eftekhari_steady_bits"] > row["ours_steady_bits"]

    def test_phase_clock_experiment(self):
        preset = ExperimentPreset(
            name="tiny", population_sizes=(60,), parallel_time=900, trials=1, seed=5
        )
        result = run_phase_clock_experiment(preset)
        row = result.rows[0]
        assert row["mean_period_interactions"] > 0

    def test_baseline_comparison_distinguishes_static(self):
        preset = ExperimentPreset(
            name="tiny",
            population_sizes=(150,),
            parallel_time=600,
            trials=1,
            seed=5,
            extra={"drop_time": 100, "keep": 20},
        )
        result = run_baseline_comparison(preset)
        by_protocol = {row["protocol"]: row for row in result.rows}
        assert by_protocol["dynamic-size-counting (ours)"]["adapted_to_drop"]
        assert not by_protocol["static-max-grv"]["adapted_to_drop"]


class TestResultPersistenceAndCli:
    def test_save_writes_csv_and_manifest(self, tmp_path):
        result = run_fig2(tiny())
        out = result.save(tmp_path)
        assert (out / "rows.csv").exists()
        assert (out / "manifest.json").exists()
        assert any(path.name.startswith("series_") for path in out.iterdir())

    def test_result_table_renders(self):
        result = ExperimentResult(
            experiment="demo", description="d", rows=[{"a": 1.0, "b": 2}]
        )
        assert "demo" in result.table()

    def test_cli_list(self, capsys):
        assert main(["list"]) == 0
        captured = capsys.readouterr()
        assert "fig2" in captured.out

    def test_cli_runner_registry_complete(self):
        from repro.scenarios import scenario_names

        # Every registered scenario has presets, and the legacy runner map
        # is a subset of the registry (the nine paper experiments).
        assert set(scenario_names()) == set(PRESETS)
        assert set(EXPERIMENT_RUNNERS) < set(scenario_names())

    def test_save_load_round_trip(self, tmp_path):
        result = run_fig2(tiny())
        saved = result.save(tmp_path)
        loaded = ExperimentResult.load(saved)
        assert loaded.rows == result.rows
        assert loaded.experiment == result.experiment
        assert loaded.description == result.description
        assert set(loaded.series) == set(result.series)
        # Saving the loaded result regenerates an identical manifest.
        second = loaded.save(tmp_path / "again")
        assert (second / "manifest.json").read_text() == (
            saved / "manifest.json"
        ).read_text()


class TestEngineSelectors:
    def test_every_runner_accepts_engine_keyword(self):
        """Every experiment runner exposes the ``engine=`` selector."""
        import inspect

        for name, runner in EXPERIMENT_RUNNERS.items():
            assert "engine" in inspect.signature(runner).parameters, name

    def test_fig2_engine_metadata_and_agreement(self):
        preset = ExperimentPreset(
            name="tiny", population_sizes=(60,), parallel_time=40, trials=2, seed=9
        )
        sequential = run_fig2(preset, engine="sequential")
        array = run_fig2(preset, engine="array")
        assert sequential.metadata["engine"] == "sequential"
        assert array.metadata["engine"] == "array"
        # The exact engines are trajectory-identical under shared seeds.
        assert sequential.series == array.series
        assert sequential.rows == array.rows

    def test_sequential_only_experiments_reject_other_engines(self):
        for runner in (
            run_memory_table,
            run_phase_clock_experiment,
            run_baseline_comparison,
        ):
            with pytest.raises(ConfigurationError):
                runner(tiny(), engine="batched")

    def test_cli_all_skips_unsupported_engine_combinations(self, capsys, monkeypatch):
        """`all --engine batched` runs the supporting experiments and skips the rest."""
        tiny_preset = ExperimentPreset(
            name="quick", population_sizes=(50,), parallel_time=15, trials=1, seed=1
        )
        for experiment in PRESETS:
            monkeypatch.setitem(PRESETS, experiment, {"quick": tiny_preset})
        assert main(["all", "--effort", "quick", "--engine", "batched"]) == 0
        captured = capsys.readouterr()
        assert "[baseline] skipped:" in captured.out
        assert "[memory] skipped:" in captured.out
        assert "[phase_clock] skipped:" in captured.out
        assert "[fig2] completed" in captured.out

    def test_cli_all_without_engine_flag_propagates_errors(self, capsys, monkeypatch):
        """Without --engine, a ConfigurationError in `all` mode is fatal, not a skip."""
        import repro.experiments.cli as cli_module

        def broken(*args, **kwargs):
            raise ConfigurationError("boom")

        monkeypatch.setattr(cli_module, "run_scenario", broken)
        assert main(["all", "--effort", "quick"]) == 2
        captured = capsys.readouterr()
        assert "boom" in captured.err
        assert "skipped" not in captured.out

    def test_cli_single_experiment_engine_mismatch_is_an_error(self, capsys, monkeypatch):
        tiny_preset = ExperimentPreset(
            name="quick", population_sizes=(50,), parallel_time=15, trials=1, seed=1
        )
        monkeypatch.setitem(PRESETS, "memory", {"quick": tiny_preset})
        assert main(["memory", "--effort", "quick", "--engine", "batched"]) == 2
        captured = capsys.readouterr()
        assert "error" in captured.err

    def test_cli_engine_flag(self, capsys):
        preset_patch = {
            "quick": ExperimentPreset(
                name="quick", population_sizes=(50,), parallel_time=20, trials=1, seed=1
            )
        }
        original = PRESETS["fig3"]
        PRESETS["fig3"] = preset_patch
        try:
            assert main(["fig3", "--effort", "quick", "--engine", "array"]) == 0
        finally:
            PRESETS["fig3"] = original
        captured = capsys.readouterr()
        assert "fig3" in captured.out


class TestScenarioCliCommands:
    """The redesigned registry-backed CLI: run / list / sweep."""

    @staticmethod
    def _patch_tiny(monkeypatch):
        tiny_preset = ExperimentPreset(
            name="quick", population_sizes=(50,), parallel_time=15, trials=1, seed=1
        )
        for experiment in PRESETS:
            monkeypatch.setitem(PRESETS, experiment, {"quick": tiny_preset})

    def test_run_subcommand_multiple_scenarios(self, capsys, monkeypatch):
        self._patch_tiny(monkeypatch)
        assert main(["run", "fig3", "oscillate", "--effort", "quick"]) == 0
        out = capsys.readouterr().out
        assert "[fig3] completed" in out
        assert "[oscillate] completed" in out

    def test_legacy_positional_alias(self, capsys, monkeypatch):
        self._patch_tiny(monkeypatch)
        assert main(["fig3", "--effort", "quick"]) == 0
        assert "[fig3] completed" in capsys.readouterr().out

    def test_list_shows_catalog_scenarios(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("oscillate", "boom_bust", "churn", "repeated_decimation"):
            assert name in out

    def test_list_tag_filter(self, capsys):
        assert main(["list", "--tag", "adversarial"]) == 0
        out = capsys.readouterr().out
        assert "oscillate" in out
        assert "fig2:" not in out

    def test_run_unknown_scenario_is_one_line_error(self, capsys):
        assert main(["run", "warp9"]) == 2
        err = capsys.readouterr().err
        assert "unknown scenario" in err
        assert err.count("\n") == 1

    def test_run_engine_auto(self, capsys, monkeypatch):
        self._patch_tiny(monkeypatch)
        assert main(["run", "fig3", "--engine", "auto"]) == 0
        assert "[fig3] completed" in capsys.readouterr().out

    def test_sweep_subcommand_runs_grid(self, capsys, monkeypatch, tmp_path):
        self._patch_tiny(monkeypatch)
        assert (
            main(
                [
                    "sweep",
                    "fig4",
                    "--set",
                    "keep=10,20",
                    "--set",
                    "drop_time=5",
                    "--effort",
                    "quick",
                    "--output",
                    str(tmp_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "keep=10,drop_time=5" in out
        assert "keep=20,drop_time=5" in out
        assert (tmp_path / "keep=10__drop_time=5" / "fig4" / "manifest.json").exists()
        loaded = ExperimentResult.load(tmp_path / "keep=10__drop_time=5" / "fig4")
        assert loaded.metadata["sweep"] == "keep=10,drop_time=5"
        assert loaded.rows[0]["keep"] == 10

    def test_sweep_bad_axis_syntax_is_one_line_error(self, capsys):
        assert main(["sweep", "fig4", "--set", "keep"]) == 2
        assert "KEY=V1" in capsys.readouterr().err

    def test_sweep_invalid_protocol_params_fail_before_running(self, capsys, monkeypatch):
        self._patch_tiny(monkeypatch)
        # tau1=0.1 violates tau1 > tau2; the grid is validated up front.
        assert main(["sweep", "fig3", "--set", "tau1=0.1", "--effort", "quick"]) == 2
        err = capsys.readouterr().err
        assert "tau" in err

    def test_sweep_unsupported_engine_is_an_error(self, capsys):
        assert main(["sweep", "memory", "--set", "n=50", "--engine", "batched"]) == 2
        assert "sequential" in capsys.readouterr().err

    def test_run_missing_effort_preset_fails_before_work(self, capsys, monkeypatch):
        monkeypatch.delitem(PRESETS, "fig2")
        assert main(["run", "fig2", "--effort", "quick"]) == 2
        err = capsys.readouterr().err
        assert "fig2" in err

    def test_invalid_schedule_value_is_one_line_error(self, capsys, monkeypatch):
        self._patch_tiny(monkeypatch)
        # keep=1 produces an InvalidScheduleError (target below 2); the CLI
        # must report it as a one-line error, not a traceback.
        assert (
            main(["sweep", "fig4", "--set", "keep=1", "--effort", "quick"]) == 2
        )
        err = capsys.readouterr().err
        assert "at least 2" in err

    def test_run_invalid_workload_knob_is_one_line_error(self, capsys, monkeypatch):
        self._patch_tiny(monkeypatch)
        import repro.experiments.cli as cli_module
        from repro.engine.errors import InvalidScheduleError

        def broken(*args, **kwargs):
            raise InvalidScheduleError("bad schedule")

        monkeypatch.setattr(cli_module, "run_scenario", broken)
        assert main(["run", "fig4", "--effort", "quick"]) == 2
        assert "bad schedule" in capsys.readouterr().err

    def test_sweep_duplicate_set_key_is_an_error(self, capsys):
        assert main(["sweep", "fig4", "--set", "keep=10", "--set", "keep=20"]) == 2
        assert "duplicate --set key" in capsys.readouterr().err

    def test_load_keeps_noncanonical_numeric_strings_as_strings(self, tmp_path):
        result = ExperimentResult(
            experiment="demo",
            description="d",
            rows=[{"label": "1_000", "padded": " 42", "count": 7, "ratio": 0.5}],
        )
        loaded = ExperimentResult.load(result.save(tmp_path))
        assert loaded.rows == result.rows


class TestListJson:
    """``list --json``: machine-readable output shared with GET /scenarios."""

    def test_list_json_matches_shared_listing(self, capsys):
        import json

        from repro.scenarios.listing import scenario_listing

        assert main(["list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == scenario_listing()

    def test_list_json_tag_filter(self, capsys):
        import json

        assert main(["list", "--json", "--tag", "adversarial"]) == 0
        payload = json.loads(capsys.readouterr().out)
        names = [entry["name"] for entry in payload]
        assert "oscillate" in names
        assert "fig2" not in names

    def test_list_json_subprocess(self):
        """The real entry point, end to end: spawn, parse, cross-check."""
        import json
        import os
        import subprocess
        import sys

        from repro.scenarios.registry import scenario_names

        env = dict(os.environ, PYTHONPATH="src")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.experiments.cli", "list", "--json"],
            capture_output=True,
            text=True,
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        assert proc.returncode == 0, proc.stderr
        payload = json.loads(proc.stdout)
        assert [entry["name"] for entry in payload] == scenario_names()
        for entry in payload:
            assert {"name", "description", "tags", "engines", "efforts", "cache_key"} <= set(
                entry
            )
            assert len(entry["cache_key"]) == 64
